"""Simulation configuration.

The latency parameters default to the values used in the paper's experiments
(§4): a communication startup latency of 10 µs, a router setup latency of
40 ns per message header per router, a channel propagation latency of 10 ns
per flit, 128-flit messages, and single-flit input buffers.

All times are integer nanoseconds; the simulator never uses floating point
for time so that event ordering is exact and runs are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..errors import ConfigurationError

__all__ = ["SimulationConfig", "PAPER_CONFIG"]


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Parameters of one flit-level wormhole simulation.

    Attributes
    ----------
    startup_latency_ns:
        Software/communication startup latency charged once per message at
        the source before the first flit can be injected (paper: 10 µs).
    router_setup_ns:
        Latency between the header flit arriving at a switch and the routing
        decision / output-channel requests being made (paper: 40 ns).
    channel_latency_ns:
        Propagation latency of one flit across one channel; also the channel
        cycle time, i.e. a channel forwards at most one flit per
        ``channel_latency_ns`` (paper: 10 ns).
    message_length_flits:
        Number of flits per message including header and tail (paper: 128).
    input_buffer_depth:
        Capacity, in flits, of the input buffer at the receiving end of every
        channel (paper: single-flit buffers; SPAM's key property is that this
        may stay 1 regardless of message length).
    output_buffer_depth:
        Capacity, in flits, of the output buffer at the transmitting end of
        every channel.
    max_hops:
        Safety bound on the number of switches a single worm may visit;
        exceeding it raises :class:`~repro.errors.LivelockError`.
    deadlock_detection:
        When ``True`` (default) the simulator diagnoses a deadlock (and
        raises :class:`~repro.errors.DeadlockError`) if its event queue
        drains while messages are still in flight.
    collect_channel_stats:
        Record per-channel busy time and flit counts (slightly slower; off by
        default for large sweeps).
    trace:
        Record a structured event trace (for debugging and for the Figure 1
        walk-through example).  Expensive; never enable for sweeps.
    fast_path:
        Enable the steady-state event-coalescing fast path (default on).
        The fast path batch-advances body flits once every worm segment in a
        streaming phase is ``ACTIVE`` and produces bit-identical timestamps,
        traces and statistics; turn it off to force the reference per-flit
        execution (useful when stepping through the engine, and exercised by
        the trace-equivalence tests).  ``docs/fast_path.md`` specifies the
        coalescing contract.
    coalesce_stagger:
        Allow the fast path to coalesce *phase-staggered* period windows:
        pending flit transfers may sit at several deadlines (congruence
        classes modulo ``channel_latency_ns``) within one channel period
        instead of one synchronized tick, so concurrently-active worms that
        started on different cycles — e.g. under Poisson arrivals — still
        batch.  Ignored when ``fast_path`` is off.
    coalesce_bubbles:
        Allow the fast path to coalesce *bubble-periodic* steady states:
        windows whose only non-body activity is a fixed per-tick bubble
        emission from blocked multicast branches (the bubble signature —
        buffer contents, creation count, trace records — must repeat
        exactly).  Ignored when ``fast_path`` is off.
    coalesce_multi_period:
        Allow the fast path to coalesce *multi-period* steady states: a
        window whose activity is self-similar with period
        ``k × channel_latency_ns`` for some ``k ≤ coalesce_k_max`` — the
        regime behind a rate bottleneck such as a slow channel (see
        ``channel_latency_factors``), where every link upstream of the
        bottleneck fires every k-th window.  The probe tries k in
        ascending order before declaring a verify failure.  Ignored when
        ``fast_path`` is off.
    coalesce_k_max:
        Largest compound period (in channel periods) the multi-period
        probe will try; ``K_MAX`` in ``docs/fast_path.md``.  Larger values
        deepen the state closure the probe snapshots, so keep this small
        (the default covers the 2× and 3× slow channels that produce
        multi-period patterns in practice).  Ignored when
        ``coalesce_multi_period`` is off.
    channel_latency_factors:
        Per-channel latency multipliers ``((cid, factor), ...)``: channel
        ``cid`` forwards one flit per ``factor × channel_latency_ns``
        instead of the base period, modelling a degraded or long link in
        an irregular topology.  Factors are positive integers so event
        timestamps stay on the base grid.  A slow channel throttles its
        whole worm to rate ``1/factor`` — the canonical source of
        every-k-th-window steady states (``coalesce_multi_period``).
    region_parallel:
        Route whole-run execution through the region-parallel decomposition
        (:mod:`repro.simulator.regions`): the workload is split into
        channel-disjoint shards by region and each shard runs on its own
        engine, usually in its own process.  Results stay equivalent to
        the single-process engine (``docs/region_parallel.md`` specifies
        the contract).  Honoured by the sweep layer's evaluation path;
        :class:`~repro.simulator.engine.WormholeSimulator` itself ignores
        it (a single engine instance is always sequential).
    region_count:
        Number of spanning-tree-contiguous regions the switches are
        partitioned into when ``region_parallel`` is on (clamped to the
        switch count).  ``1`` keeps everything in one shard — the
        reference execution.  More regions expose more parallelism for
        region-local traffic but coalesce globally-routed messages into
        fewer, larger shards; see ``docs/region_parallel.md`` for how to
        pick a value.
    telemetry:
        Record wall-clock telemetry (:mod:`repro.obs`) during runs: one
        span per fast-path probe with its exit tier, snapshot/replay
        sub-spans, and the ``coalesce_*`` counters re-published as gauges.
        Telemetry is observability-only — every observable result stays
        bit-identical with it on or off (the observables firewall,
        ``docs/observability.md``) — but the per-probe instrumentation
        costs wall-clock, so it is off by default.  When off the engine
        holds the no-op recorder and pays nothing per event.
    """

    startup_latency_ns: int = 10_000
    router_setup_ns: int = 40
    channel_latency_ns: int = 10
    message_length_flits: int = 128
    input_buffer_depth: int = 1
    output_buffer_depth: int = 1
    max_hops: int = 4096
    deadlock_detection: bool = True
    collect_channel_stats: bool = False
    trace: bool = False
    fast_path: bool = True
    coalesce_stagger: bool = True
    coalesce_bubbles: bool = True
    coalesce_multi_period: bool = True
    coalesce_k_max: int = 3
    channel_latency_factors: tuple[tuple[int, int], ...] = ()
    region_parallel: bool = False
    region_count: int = 1
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.startup_latency_ns < 0:
            raise ConfigurationError("startup latency cannot be negative")
        if self.router_setup_ns < 0:
            raise ConfigurationError("router setup latency cannot be negative")
        if self.channel_latency_ns <= 0:
            raise ConfigurationError("channel latency must be positive")
        if self.message_length_flits < 2:
            raise ConfigurationError("messages need at least a header and a tail flit")
        if self.input_buffer_depth < 1 or self.output_buffer_depth < 1:
            raise ConfigurationError("buffer depths must be at least one flit")
        if self.max_hops < 2:
            raise ConfigurationError("max_hops must be at least 2")
        if self.coalesce_k_max < 1:
            raise ConfigurationError("coalesce_k_max must be at least 1")
        if self.region_count < 1:
            raise ConfigurationError("region_count must be at least 1")
        seen_cids: set[int] = set()
        for entry in self.channel_latency_factors:
            try:
                cid, factor = entry
            except (TypeError, ValueError):
                raise ConfigurationError(
                    "channel_latency_factors entries must be (cid, factor) pairs"
                ) from None
            if cid != int(cid) or cid < 0:
                raise ConfigurationError(
                    f"channel id {cid!r} must be a non-negative integer"
                )
            if factor != int(factor) or factor < 1:
                # Integral factors keep every event timestamp on the base
                # channel-period grid (the invariant the fast path's modular
                # arithmetic relies on).
                raise ConfigurationError(
                    f"latency factor for channel {cid} must be an integer >= 1"
                )
            if cid in seen_cids:
                raise ConfigurationError(
                    f"channel id {cid} appears more than once in channel_latency_factors"
                )
            seen_cids.add(cid)

    def with_overrides(self, **kwargs: Any) -> "SimulationConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **kwargs)

    @property
    def serialization_latency_ns(self) -> int:
        """Time to push a whole message across one channel back to back."""
        return self.message_length_flits * self.channel_latency_ns


#: The exact configuration used in the paper's experiments.
PAPER_CONFIG = SimulationConfig()
