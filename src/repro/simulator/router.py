"""Worm segments and source network interfaces.

A **worm segment** is the presence of one message at one switch: it owns the
incoming link whose input buffer the message's flits arrive in, performs the
routing decision after the router setup latency, enqueues requests in the
OCRQs of the required output channels, acquires them atomically, and then
replicates flits from the input buffer to all acquired output buffers —
inserting bubble flits into the free output buffers whenever the data flit
is held back by an occupied one (the asynchronous replication mechanism of
paper §3.2).

A **source interface** models the sending half of a processor's network
interface: it serialises the processor's outstanding messages, charges the
per-message startup latency, and pumps the worm's flits into the injection
channel.

Both classes are driven by the engine (:mod:`repro.simulator.engine`): they
never touch the event queue directly except through the engine's helpers, so
all scheduling policy lives in one place.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING

from ..core.decision import DecisionMode
from ..errors import SimulationError
from .flit import Flit, FlitKind
from .links import LinkState
from .message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import WormholeSimulator

__all__ = ["SegmentState", "WormSegment", "SourceInterface"]


class SegmentState(enum.Enum):
    """Lifecycle of a worm segment at a switch."""

    #: Header arrived; waiting for the router setup latency to elapse.
    SETUP = "setup"
    #: Requests enqueued; waiting to acquire all required output channels.
    WAITING = "waiting"
    #: Channels acquired; replicating flits.
    ACTIVE = "active"
    #: Tail replicated onward; the segment is finished.
    DONE = "done"


class WormSegment:
    """One message's state machine at one switch."""

    __slots__ = (
        "engine",
        "message",
        "switch",
        "in_link",
        "state",
        "required",
        "outputs",
        "head_replicated",
    )

    def __init__(
        self,
        engine: "WormholeSimulator",
        message: Message,
        switch: int,
        in_link: LinkState,
    ) -> None:
        self.engine = engine
        self.message = message
        self.switch = switch
        self.in_link = in_link
        self.state = SegmentState.SETUP
        #: Links whose OCRQ this segment is queued in (before acquisition).
        self.required: list[LinkState] = []
        #: Links acquired by this segment (after acquisition).
        self.outputs: list[LinkState] = []
        #: ``True`` once the header flit has been replicated to the outputs;
        #: bubble flits may only be inserted after this point (they fill the
        #: gap *behind* the header, never run ahead of it).
        self.head_replicated = False

    # ------------------------------------------------------------------
    # Decision and acquisition
    # ------------------------------------------------------------------
    def make_decision(self) -> None:
        """Run the routing function and enqueue the channel requests.

        Called by the engine ``router_setup_ns`` after the header flit
        arrived.  For a one-of (adaptive) decision the segment prefers a
        candidate that is immediately available (free channel, empty OCRQ);
        when none is available it enqueues on the most-preferred candidate
        and waits there, preserving FIFO fairness.
        """
        engine = self.engine
        decision = engine.routing.decide(self.message, self.switch, self.in_link.channel)
        if decision.mode is DecisionMode.ALL_OF:
            links = [engine.links[cid] for cid in decision.channel_ids]
        else:
            candidates = [engine.links[cid] for cid in decision.channel_ids]
            chosen = None
            for link in candidates:
                if link.is_free and link.ocrq.is_empty:
                    chosen = link
                    break
            if chosen is None:
                chosen = candidates[0]
            links = [chosen]
        self.required = links
        self.state = SegmentState.WAITING
        engine.touched_cids.update(link.cid for link in links)
        for link in links:
            link.ocrq.enqueue(self)
        engine.trace_event("request", message=self.message.mid, switch=self.switch,
                           channels=[link.cid for link in links])
        self.try_acquire()

    def try_acquire(self) -> None:
        """Acquire the required channels if all are free and headed by us."""
        if self.state is not SegmentState.WAITING:
            return
        mid = self.message.mid
        for link in self.required:
            if link.reserved_by is not None or link.ocrq.head() is not self:
                return
        for link in self.required:
            link.ocrq.pop_head(self)
            link.reserved_by = mid
            link.feeder = self
        self.outputs = self.required
        self.required = []
        self.state = SegmentState.ACTIVE
        self.engine.trace_event(
            "acquire", message=mid, switch=self.switch,
            channels=[link.cid for link in self.outputs],
        )
        self.try_advance()

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def try_advance(self) -> None:
        """Replicate flits from the input buffer to all acquired outputs.

        A data flit advances only when *every* acquired output buffer has a
        free slot; when only some do, bubble flits are pushed into those so
        the corresponding downstream branches keep moving (asynchronous
        replication).  The input-buffer slot freed by an advancing data flit
        immediately allows the upstream link to deliver the next flit.
        """
        if self.state is not SegmentState.ACTIVE:
            return
        engine = self.engine
        in_buffer = self.in_link.in_buffer
        outputs = self.outputs
        advanced_any = False
        while True:
            if not in_buffer._slots:
                break
            blocked = False
            for link in outputs:
                out_buffer = link.out_buffer
                if len(out_buffer._slots) >= out_buffer.capacity:
                    blocked = True
                    break
            if not blocked:
                flit = in_buffer.pop()
                self._replicate(flit)
                advanced_any = True
                kind = flit.kind
                if kind is FlitKind.HEAD:
                    self.head_replicated = True
                elif kind is FlitKind.TAIL:
                    self._finish()
                    break
                continue
            # Flit present but blocked by at least one full output buffer:
            # fill the free output buffers with bubbles so their downstream
            # branches keep advancing.  Bubbles are inserted only
            #   (a) after this segment's header has been replicated — bubbles
            #       fill the gap behind the header and must never overtake it
            #       (an overtaking bubble would occupy the downstream input
            #       buffer before any segment exists there to drain it), and
            #   (b) while one of *this message's own* data flits is what
            #       blocks the replication; once the only blockers are
            #       previously-inserted bubbles (which drain on their own
            #       within a channel cycle) or another message's trailing
            #       flits, no further bubbles are created — otherwise
            #       staggered buffer availability could starve the data flit
            #       behind an endless train of bubbles.
            if not self.head_replicated:
                break
            own_mid = self.message.mid
            blocked_by_own_data = False
            for link in outputs:
                out_buffer = link.out_buffer
                if len(out_buffer._slots) >= out_buffer.capacity:
                    for blocking in out_buffer._slots:
                        if (
                            blocking.message_id == own_mid
                            and blocking.kind is not FlitKind.BUBBLE
                        ):
                            blocked_by_own_data = True
                            break
                    if blocked_by_own_data:
                        break
            if not blocked_by_own_data:
                break
            # Bubbles are inserted one at a time, only into output buffers
            # that have fully drained: the goal is to keep the downstream
            # branch fed at channel rate, not to build up trains of bubbles
            # that the real data (and ultimately the tail) would then have to
            # queue behind.
            pushed_bubble = False
            for link in self.outputs:
                if link.out_buffer.is_empty:
                    bubble = Flit(FlitKind.BUBBLE, self.message.mid, in_buffer.peek().seq)
                    link.out_buffer.push(bubble)
                    engine.stats.bubbles_created += 1
                    engine.try_start_transfer(link)
                    pushed_bubble = True
            if pushed_bubble:
                engine.trace_event(
                    "bubble", message=self.message.mid, switch=self.switch,
                )
            break
        if advanced_any:
            # The upstream link can now deliver the next flit into the freed
            # input-buffer slot(s).
            engine.try_start_transfer(self.in_link)

    def _replicate(self, flit: Flit) -> None:
        engine = self.engine
        outputs = self.outputs
        if len(outputs) == 1:
            link = outputs[0]
            link.out_buffer.push(flit)
            engine.try_start_transfer(link)
            return
        for index, link in enumerate(outputs):
            copy = flit if index == 0 else Flit(flit.kind, flit.message_id, flit.seq)
            link.out_buffer.push(copy)
            engine.try_start_transfer(link)

    def _finish(self) -> None:
        """Release the acquired channels once the tail has been replicated."""
        engine = self.engine
        self.state = SegmentState.DONE
        released = self.outputs
        self.outputs = []
        for link in released:
            if link.reserved_by != self.message.mid:
                raise SimulationError("segment released a channel it does not hold")
            link.reserved_by = None
        engine.trace_event(
            "release", message=self.message.mid, switch=self.switch,
            channels=[link.cid for link in released],
        )
        # Detach from the input link and let the engine drop the segment.
        if self.in_link.sink_segment is self:
            self.in_link.sink_segment = None
        engine.segment_finished(self)
        for link in released:
            engine.notify_channel_released(link)

    # ------------------------------------------------------------------
    # Engine notifications
    # ------------------------------------------------------------------
    def on_output_space(self, link: LinkState) -> None:
        """An acquired output buffer gained a free slot."""
        self.try_advance()

    def on_flit_available(self) -> None:
        """A new flit arrived in the input buffer."""
        self.try_advance()

    def waiting_on(self) -> list[LinkState]:
        """Links this segment is still waiting to acquire (for diagnostics)."""
        if self.state is not SegmentState.WAITING:
            return []
        return [
            link
            for link in self.required
            if link.reserved_by is not None or link.ocrq.head() is not self
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WormSegment(msg={self.message.mid}, switch={self.switch}, "
            f"state={self.state.value})"
        )


class SourceInterface:
    """The sending side of a processor's network interface.

    Messages submitted to a processor are sent strictly one after another:
    each waits for the previous message's tail to be handed to the injection
    channel, then pays the startup latency, then streams its flits into the
    injection channel's output buffer as fast as the channel drains it.
    """

    __slots__ = ("engine", "processor", "injection", "queue", "current", "next_seq")

    def __init__(self, engine: "WormholeSimulator", processor: int, injection: LinkState) -> None:
        self.engine = engine
        self.processor = processor
        self.injection = injection
        self.queue: deque[Message] = deque()
        self.current: Message | None = None
        self.next_seq = 0

    # ------------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """``True`` when no message is being started up or injected."""
        return self.current is None

    @property
    def backlog(self) -> int:
        """Number of messages waiting behind the one currently being sent."""
        return len(self.queue)

    def submit(self, message: Message) -> None:
        """Queue ``message`` for transmission."""
        self.queue.append(message)
        if self.current is None:
            self._begin_next()

    # ------------------------------------------------------------------
    def _begin_next(self) -> None:
        engine = self.engine
        if not self.queue:
            return
        message = self.queue.popleft()
        self.current = message
        self.next_seq = 0
        now = engine.now
        message.startup_began_ns = now
        engine.trace_event("startup", message=message.mid, processor=self.processor)
        engine.schedule_after(engine.config.startup_latency_ns, self._on_startup_done)

    def _on_startup_done(self) -> None:
        engine = self.engine
        message = self.current
        if message is None:
            raise SimulationError("startup completed with no current message")
        message.startup_done_ns = engine.now
        # The injection channel is used by this processor only and sends are
        # serialised, so it is always free here; reserve it for symmetry with
        # switch-to-switch channels (and for utilisation accounting).
        self.injection.reserved_by = message.mid
        self.injection.feeder = self
        self.pump()

    def pump(self) -> None:
        """Push as many flits as the injection output buffer will take."""
        engine = self.engine
        message = self.current
        if message is None:
            return
        length = message.length_flits
        injection = self.injection
        out_buffer = injection.out_buffer
        mid = message.mid
        pushed = False
        while self.next_seq < length and len(out_buffer._slots) < out_buffer.capacity:
            seq = self.next_seq
            if seq == 0:
                kind = FlitKind.HEAD
            elif seq == length - 1:
                kind = FlitKind.TAIL
            else:
                kind = FlitKind.BODY
            out_buffer.push(Flit(kind, mid, seq))
            self.next_seq += 1
            pushed = True
        if pushed:
            engine.try_start_transfer(injection)
        if self.next_seq >= length:
            # Tail handed to the channel: release it and move on to the next
            # queued message (its startup may overlap with the tail still
            # draining out of the buffer, exactly as a real NI would).
            message.injection_done_ns = engine.now
            self.injection.reserved_by = None
            self.injection.feeder = None
            self.current = None
            engine.trace_event("injected", message=message.mid, processor=self.processor)
            if self.queue:
                self._begin_next()

    def on_output_space(self, link: LinkState) -> None:
        """The injection output buffer gained a free slot."""
        self.pump()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        current = self.current.mid if self.current else None
        return (
            f"SourceInterface(processor={self.processor}, current={current}, "
            f"backlog={len(self.queue)})"
        )
