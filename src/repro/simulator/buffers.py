"""Fixed-capacity FIFO flit buffers.

Every unidirectional channel has an output buffer at its transmitting router
and an input buffer at its receiving router.  The paper's central claim is
that SPAM stays deadlock-free even when these are a single flit deep, and
that their size is entirely independent of the message length; the depth is
therefore a constructor parameter exercised by the buffer-depth ablation
benchmark.
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError
from .flit import Flit

__all__ = ["FlitBuffer"]


class FlitBuffer:
    """A FIFO queue of flits with a fixed capacity.

    The buffer deliberately raises on misuse (pushing when full, popping when
    empty) instead of silently dropping flits: wormhole flow control never
    drops flits, so any such call indicates a simulator bug.
    """

    __slots__ = ("capacity", "_slots")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("buffer capacity must be at least one flit")
        self.capacity = capacity
        self._slots: deque[Flit] = deque()

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of flits currently held."""
        return len(self._slots)

    @property
    def free_slots(self) -> int:
        """Number of additional flits the buffer can accept."""
        return self.capacity - len(self._slots)

    @property
    def is_empty(self) -> bool:
        """``True`` when no flit is held."""
        return not self._slots

    @property
    def is_full(self) -> bool:
        """``True`` when no more flits can be accepted."""
        return len(self._slots) >= self.capacity

    # ------------------------------------------------------------------
    def push(self, flit: Flit) -> None:
        """Append ``flit``; raises if the buffer is full."""
        if len(self._slots) >= self.capacity:
            raise SimulationError("push into a full flit buffer")
        self._slots.append(flit)

    def peek(self) -> Flit:
        """The oldest flit without removing it; raises if empty."""
        if not self._slots:
            raise SimulationError("peek into an empty flit buffer")
        return self._slots[0]

    def pop(self) -> Flit:
        """Remove and return the oldest flit; raises if empty."""
        if not self._slots:
            raise SimulationError("pop from an empty flit buffer")
        return self._slots.popleft()

    def flits(self) -> tuple[Flit, ...]:
        """Snapshot of the buffer contents, oldest first (for diagnostics)."""
        return tuple(self._slots)

    def replace_contents(self, flits) -> None:
        """Replace the whole buffer contents, oldest first.

        Used by the engine's steady-state fast path to substitute the flits
        that a batch of coalesced ticks would have left here; fresh flit
        objects avoid any aliasing with flits held elsewhere.
        """
        slots = deque(flits)
        if len(slots) > self.capacity:
            raise SimulationError("replacement exceeds buffer capacity")
        self._slots = slots

    def __len__(self) -> int:
        return len(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlitBuffer({len(self._slots)}/{self.capacity})"
