"""Simulation statistics collection.

The statistics object records one :class:`MessageRecord` per message and a
small number of network-level counters.  Aggregation into means and
confidence intervals lives in :mod:`repro.analysis.stats`; this module only
gathers raw observations so that the simulator's hot path stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from .message import Message, MessageKind

__all__ = ["MessageRecord", "ChannelRecord", "SimulationStats"]


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """The measurement-relevant facts about one completed message."""

    mid: int
    kind: str
    source: int
    num_destinations: int
    length_flits: int
    created_ns: int
    startup_began_ns: int
    completed_ns: int
    latency_from_creation_ns: int
    latency_from_startup_ns: int
    hops: int
    metadata: dict = field(default_factory=dict)

    @property
    def latency_from_creation_us(self) -> float:
        """Creation-to-completion latency in microseconds."""
        return self.latency_from_creation_ns / 1000.0

    @property
    def latency_from_startup_us(self) -> float:
        """Startup-to-completion latency in microseconds (paper's metric)."""
        return self.latency_from_startup_ns / 1000.0


@dataclass(frozen=True, slots=True)
class ChannelRecord:
    """Per-channel utilisation counters (channel-statistics mode only)."""

    cid: int
    src: int
    dst: int
    data_flits: int
    bubble_flits: int
    busy_ns: int


class SimulationStats:
    """Accumulates message and channel observations for one simulation run."""

    def __init__(self) -> None:
        self.records: list[MessageRecord] = []
        self.channel_records: list[ChannelRecord] = []
        self.messages_submitted = 0
        self.messages_completed = 0
        self.flit_hops = 0
        self.bubbles_created = 0
        self.end_time_ns = 0

    # ------------------------------------------------------------------
    def record_message(self, message: Message) -> MessageRecord:
        """Convert a completed message into a :class:`MessageRecord`."""
        if not message.is_complete:
            raise ValueError(f"message {message.mid} is not complete")
        # "Unset" is None, never 0: a message created at t=0 legitimately
        # starts up and completes at timestamp 0, and a falsy-or fallback
        # would silently rewrite those zeros.
        startup_began_ns = message.startup_began_ns
        completed_ns = message.completed_ns
        latency_from_creation_ns = message.latency_from_creation_ns
        latency_from_startup_ns = message.latency_from_startup_ns
        record = MessageRecord(
            mid=message.mid,
            kind=message.kind.value,
            source=message.source,
            num_destinations=message.num_destinations,
            length_flits=message.length_flits,
            created_ns=message.created_ns,
            startup_began_ns=(
                message.created_ns if startup_began_ns is None else startup_began_ns
            ),
            completed_ns=0 if completed_ns is None else completed_ns,
            latency_from_creation_ns=(
                0 if latency_from_creation_ns is None else latency_from_creation_ns
            ),
            latency_from_startup_ns=(
                0 if latency_from_startup_ns is None else latency_from_startup_ns
            ),
            hops=message.hops,
            metadata=dict(message.metadata),
        )
        self.records.append(record)
        self.messages_completed += 1
        return record

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def latencies_us(self, kind: str | None = None, from_creation: bool = True) -> list[float]:
        """Latencies (µs) of all completed messages, optionally filtered by kind.

        Parameters
        ----------
        kind:
            ``"unicast"``, ``"multicast"`` or ``None`` for all messages.
        from_creation:
            Measure from message creation (includes source queueing) when
            ``True``, from startup when ``False``.
        """
        result = []
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            value = (
                record.latency_from_creation_us if from_creation else record.latency_from_startup_us
            )
            result.append(value)
        return result

    def mean_latency_us(self, kind: str | None = None, from_creation: bool = True) -> float:
        """Mean latency in microseconds (``nan`` if no matching messages)."""
        values = self.latencies_us(kind, from_creation)
        return mean(values) if values else float("nan")

    def multicast_records(self) -> list[MessageRecord]:
        """Records of multicast messages only."""
        return [r for r in self.records if r.kind == MessageKind.MULTICAST.value]

    def unicast_records(self) -> list[MessageRecord]:
        """Records of unicast messages only."""
        return [r for r in self.records if r.kind == MessageKind.UNICAST.value]

    @property
    def completion_ratio(self) -> float:
        """Fraction of submitted messages that completed."""
        if self.messages_submitted == 0:
            return 1.0
        return self.messages_completed / self.messages_submitted

    def summary(self) -> dict[str, float | int]:
        """Compact dictionary summary used by experiment reports."""
        return {
            "messages_submitted": self.messages_submitted,
            "messages_completed": self.messages_completed,
            "mean_latency_us": self.mean_latency_us(),
            "mean_unicast_latency_us": self.mean_latency_us("unicast"),
            "mean_multicast_latency_us": self.mean_latency_us("multicast"),
            "flit_hops": self.flit_hops,
            "bubbles_created": self.bubbles_created,
            "end_time_ns": self.end_time_ns,
        }
