"""Flit-level wormhole simulation substrate.

The simulator reproduces the machinery of the paper's MARS simulator at the
same level of detail: per-flit channel propagation, per-header router setup,
per-message startup, single-flit (configurable) input buffers, output channel
request queues with atomic multi-channel acquisition, and asynchronous flit
replication with bubble flits.

Public entry points
-------------------
* :class:`~repro.simulator.engine.WormholeSimulator` — the simulator.
* :class:`~repro.simulator.config.SimulationConfig` /
  :data:`~repro.simulator.config.PAPER_CONFIG` — latency and sizing parameters.
* :class:`~repro.simulator.message.Message` — the unit of traffic.
* :class:`~repro.simulator.stats.SimulationStats` — collected observations.
"""

from .buffers import FlitBuffer
from .config import PAPER_CONFIG, SimulationConfig
from .deadlock import DeadlockReport, diagnose
from .engine import WormholeSimulator
from .events import EventQueue
from .flit import Flit, FlitKind, make_worm_flits
from .links import LinkState
from .message import Message, MessageKind
from .ocrq import OutputChannelRequestQueue
from .router import SegmentState, SourceInterface, WormSegment
from .stats import ChannelRecord, MessageRecord, SimulationStats
from .trace import Trace, TraceEvent

__all__ = [
    "WormholeSimulator",
    "SimulationConfig",
    "PAPER_CONFIG",
    "Message",
    "MessageKind",
    "SimulationStats",
    "MessageRecord",
    "ChannelRecord",
    "Flit",
    "FlitKind",
    "make_worm_flits",
    "FlitBuffer",
    "LinkState",
    "OutputChannelRequestQueue",
    "WormSegment",
    "SourceInterface",
    "SegmentState",
    "EventQueue",
    "DeadlockReport",
    "diagnose",
    "Trace",
    "TraceEvent",
]
