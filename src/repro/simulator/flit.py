"""Flit representation.

A worm consists of a header flit, body flits and a tail flit.  SPAM's
asynchronous replication additionally introduces *bubble* flits: when a data
flit cannot be replicated to all of a message's acquired output buffers
because some of them are still occupied, empty bubble flits are propagated
into the free ones so that the different heads of the multi-head worm can
advance independently (paper §3.2).

Flits are deliberately tiny objects (``__slots__``, no payload) because the
simulator creates hundreds of thousands of them in a single Figure 3 run.
"""

from __future__ import annotations

import enum

__all__ = ["FlitKind", "Flit"]


class FlitKind(enum.IntEnum):
    """The four flit kinds handled by the replication machinery."""

    HEAD = 0
    BODY = 1
    TAIL = 2
    #: Filler flit inserted by asynchronous replication; carries no payload
    #: and is not counted towards message delivery.
    BUBBLE = 3


class Flit:
    """One flit of one message.

    Attributes
    ----------
    kind:
        :class:`FlitKind` of the flit.
    message_id:
        Identifier of the owning message (bubbles belong to the message whose
        replication produced them).
    seq:
        Zero-based sequence number within the message.  Bubbles reuse the
        sequence number of the data flit they were inserted in place of;
        their ordering relative to data flits is irrelevant because they are
        discarded on consumption.
    """

    __slots__ = ("kind", "message_id", "seq")

    def __init__(self, kind: FlitKind, message_id: int, seq: int) -> None:
        self.kind = kind
        self.message_id = message_id
        self.seq = seq

    @property
    def is_head(self) -> bool:
        """``True`` for header flits."""
        return self.kind is FlitKind.HEAD

    @property
    def is_tail(self) -> bool:
        """``True`` for tail flits."""
        return self.kind is FlitKind.TAIL

    @property
    def is_bubble(self) -> bool:
        """``True`` for bubble flits."""
        return self.kind is FlitKind.BUBBLE

    @property
    def is_data(self) -> bool:
        """``True`` for header, body and tail flits (everything but bubbles)."""
        return self.kind is not FlitKind.BUBBLE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Flit({self.kind.name}, msg={self.message_id}, seq={self.seq})"


def make_worm_flits(message_id: int, length: int) -> list[Flit]:
    """Build the flit sequence of a message: HEAD, BODY*, TAIL."""
    flits = [Flit(FlitKind.HEAD, message_id, 0)]
    for seq in range(1, length - 1):
        flits.append(Flit(FlitKind.BODY, message_id, seq))
    flits.append(Flit(FlitKind.TAIL, message_id, length - 1))
    return flits
