"""Region-parallel execution: one simulation, many processes, exact results.

:func:`run_region_parallel` scales a *single* simulation across cores — the
one engine cost the coalescing fast path cannot touch (churn phases) and
the sweep layer cannot help with (it parallelizes across points, never
within one run).  The decomposition:

1. partition the switches into ``SimulationConfig.region_count`` regions
   (:func:`repro.core.regions.assign_regions`, spanning-tree DFS chunks);
2. group messages into *shards* by the regions their **preferred**
   (contention-free) routes touch (:func:`repro.core.regions.plan_shards`)
   — an optimistic plan: a live worm can deviate off its preferred route
   under contention;
3. run each shard through its own :class:`WormholeSimulator` over the full
   network (same channel ids, same config, the reference engine's global
   message ids via ``submit_message(..., mid=...)``), one process per
   shard up to ``max_workers``;
4. **validate**: collect each shard engine's
   :attr:`~WormholeSimulator.touched_cids` and check the sets are pairwise
   disjoint.  Shards whose touched sets collide are merged and re-run
   (repeating until disjoint — worst case everything merges into one
   shard, which *is* a reference run);
5. merge per-shard statistics, traces and channel counters back into one
   :class:`RegionRunResult`.

**Exactness.** Disjoint touched sets imply one shard's events never read
or write state another shard touches.  Writes are immediate: flits,
reservations and OCRQ entries only ever land on touched channels.  Reads
need one engine fact: the routing decision's candidate scan short-circuits
at the first acquirable candidate, so every candidate it *examines* is
either blocked — reserved or OCRQ-queued by an earlier enqueue of the same
engine, hence already touched — or is the chosen channel, which the
decision then enqueues on (touched again).  A decision therefore never
reads a channel outside its own engine's touched set, and with the sets
pairwise disjoint each shard's run is the reference run *restricted to
that shard's messages*, event for event, timestamp for timestamp — by
induction over event time, with the fast path bridged by its own
per-engine equivalence contract (``docs/fast_path.md``).  Summed counters,
per-message records, per-message trace streams and per-channel utilisation
are bit-identical to the single-process engine.  The one artifact the
decomposition does not reproduce is the reference engine's interleaving of
*different messages'* events within one timestamp (a tie-breaking artifact
of its global event sequence counter, explicitly not part of the
observability contract): :func:`observable_fingerprint` canonicalizes
exactly that order and nothing else, and the region-vs-whole differential
harness (``tests/test_regions.py``) holds both engines to it.

**Lookahead.** The conservative-synchronization alternative (free-running
region processes exchanging boundary flits with lookahead equal to the
boundary channel latency) is unsound for this engine: wormhole backpressure
feeds credits *backwards* across any cut with zero latency, so the
effective lookahead of a cut-straddling worm is nil.  Slow cut links
(``channel_latency_factors``) lengthen only the forward direction and buy
nothing.  ``docs/region_parallel.md`` §"Why not free-running regions"
works the argument; optimistic shard decomposition is what remains sound,
and it parallelizes exactly the workloads whose messages *actually* stay
region-local — paying a deterministic merge-and-re-run when they do not.

Requirements checked at run time: the routing's selection function must be
stateless (``RandomSelection`` couples every message through one RNG
stream), and the workload must be open-loop (plain submissions; this API
takes message specs, so delivery/completion callbacks cannot exist).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..core.interface import RoutingAlgorithm
from ..core.regions import assign_regions, plan_shards
from ..errors import ConfigurationError
from ..obs import NULL_TELEMETRY, NullTelemetry, Telemetry, env_knob
from ..topology.network import Network
from .config import SimulationConfig
from .engine import WormholeSimulator
from .stats import ChannelRecord, MessageRecord, SimulationStats
from .trace import Trace, TraceEvent

__all__ = [
    "MessageView",
    "RegionRunResult",
    "run_region_parallel",
    "observable_fingerprint",
    "simulator_fingerprint",
]


@dataclass(frozen=True)
class MessageView:
    """Per-message observables, picklable across the worker boundary."""

    mid: int
    source: int
    destinations: tuple[int, ...]
    created_ns: int
    completed_ns: int | None
    delivered_ns: dict[int, int]
    hops: int
    is_complete: bool


@dataclass
class RegionRunResult:
    """Merged outcome of a region-parallel run.

    The ``region_*`` attributes are observability counters in the same
    sense as the engine's ``coalesce_*`` family (``docs/engine_counters.md``
    is normative): facts about *how* the run executed, never part of the
    simulation's observable results.
    """

    stats: SimulationStats
    trace: Trace | None
    messages: dict[int, Any]
    now: int
    #: Effective number of regions the switches were split into (the
    #: requested ``region_count`` clamped to the switch count).
    region_count: int
    #: Shards the optimistic plan proposed (preferred-route grouping),
    #: before any validation merges.
    region_planned_shards: int
    #: Channel-disjoint shards the run finally executed as — the realised
    #: parallelism, after merging every touched-set collision.
    region_shards: int
    #: Shard runs re-executed because validation merged colliding shards
    #: (0 on a workload whose traffic stayed on disjoint channels).
    region_conflict_reruns: int
    #: Switch-to-switch channels whose endpoints fall in different regions.
    region_boundary_channels: int
    #: Messages whose preferred route stays inside one region.
    region_confined_messages: int
    #: Messages whose preferred route spans two or more regions.
    region_coupled_messages: int
    #: Worker processes used (0 when every shard ran in-process).
    region_processes: int
    #: The run's telemetry recorder (``repro.obs``) with every shard's
    #: payload merged in; the shared no-op singleton when telemetry is off.
    #: Wall-clock observability only — never consulted by ``fingerprint``.
    telemetry: "Telemetry | NullTelemetry" = NULL_TELEMETRY

    def fingerprint(self) -> dict:
        """Canonical observable fingerprint (see :func:`observable_fingerprint`)."""
        return observable_fingerprint(
            stats=self.stats, trace=self.trace, messages=self.messages, now=self.now
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs: full network, its shard's messages only."""

    network: Network
    routing: RoutingAlgorithm
    config: SimulationConfig
    #: ``(mid, source, destinations, at_ns, metadata)`` per message,
    #: ascending mid (= position in the submitted workload).
    submissions: tuple[tuple[int, int, tuple[int, ...], int, dict], ...]
    until_ns: int | None
    #: Record and ship wall-clock telemetry for this shard run.
    collect_telemetry: bool = False


@dataclass(frozen=True)
class _ShardResult:
    """Observables of one shard run, picklable back to the parent."""

    records: tuple[MessageRecord, ...]
    channel_records: tuple[ChannelRecord, ...]
    messages_submitted: int
    messages_completed: int
    flit_hops: int
    bubbles_created: int
    now: int
    trace_events: tuple[TraceEvent, ...] | None
    messages: tuple[MessageView, ...]
    #: The engine's touched-channel set (see
    #: :attr:`WormholeSimulator.touched_cids`); the validation input.
    touched_cids: frozenset[int]
    #: The shard engine's telemetry payload
    #: (:meth:`repro.obs.Telemetry.to_payload`) when the parent asked for
    #: it; the parent merges it under a per-shard track label.
    telemetry: dict | None = None


def _run_shard_task(task: _ShardTask) -> _ShardResult:
    """Worker entry point: run one shard's messages on a private engine.

    Module-level and pure by the process-pool contract (repro-lint R7):
    all state arrives in ``task``, all results leave in the return value.
    """
    telemetry: Telemetry | NullTelemetry = (
        Telemetry(track="shard") if task.collect_telemetry else NULL_TELEMETRY
    )
    simulator = WormholeSimulator(
        task.network, task.routing, task.config, telemetry=telemetry
    )
    for mid, source, destinations, at_ns, metadata in task.submissions:
        simulator.submit_message(
            source, destinations, at_ns=at_ns, metadata=metadata, mid=mid
        )
    with telemetry.span("region.shard.run", messages=len(task.submissions)):
        stats = simulator.run(until_ns=task.until_ns)
    views = tuple(
        MessageView(
            mid=message.mid,
            source=message.source,
            destinations=tuple(message.destinations),
            created_ns=message.created_ns,
            completed_ns=message.completed_ns,
            delivered_ns=dict(message.delivered_ns),
            hops=message.hops,
            is_complete=message.is_complete,
        )
        for message in simulator.messages.values()
    )
    return _ShardResult(
        records=tuple(stats.records),
        channel_records=tuple(stats.channel_records),
        messages_submitted=stats.messages_submitted,
        messages_completed=stats.messages_completed,
        flit_hops=stats.flit_hops,
        bubbles_created=stats.bubbles_created,
        now=simulator.now,
        trace_events=None if simulator.trace is None else tuple(simulator.trace.events),
        messages=views,
        touched_cids=frozenset(simulator.touched_cids),
        telemetry=telemetry.to_payload() if task.collect_telemetry else None,
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _resolve_workers(max_workers: int | None, shard_count: int) -> int:
    """Effective process count: explicit value, else ``$REPRO_REGION_WORKERS``,
    else one per CPU; always capped by the shard count.  ``0`` and ``1``
    both mean in-process sequential execution (results are identical by
    construction; the knob changes wall-clock only)."""
    if max_workers is None:
        raw = env_knob("REPRO_REGION_WORKERS")
        max_workers = int(raw) if raw else (os.cpu_count() or 1)
    return max(0, min(max_workers, shard_count))


def _merge_results(
    results: Sequence[_ShardResult],
    network: Network,
    config: SimulationConfig,
    until_ns: int | None,
) -> tuple[SimulationStats, Trace | None, dict[int, MessageView], int]:
    stats = SimulationStats()
    stats.records = sorted(
        (record for result in results for record in result.records),
        key=lambda record: (record.completed_ns, record.mid),
    )
    stats.messages_submitted = sum(r.messages_submitted for r in results)
    stats.messages_completed = sum(r.messages_completed for r in results)
    stats.flit_hops = sum(r.flit_hops for r in results)
    stats.bubbles_created = sum(r.bubbles_created for r in results)
    now = until_ns if until_ns is not None else max((r.now for r in results), default=0)
    stats.end_time_ns = now
    if config.collect_channel_stats:
        # Shards are channel-disjoint, so at most one shard contributes a
        # nonzero count per channel; summing reproduces the reference
        # engine's per-link totals exactly (all-zero links included).
        data: dict[int, int] = {}
        bubble: dict[int, int] = {}
        busy: dict[int, int] = {}
        for result in results:
            for record in result.channel_records:
                data[record.cid] = data.get(record.cid, 0) + record.data_flits
                bubble[record.cid] = bubble.get(record.cid, 0) + record.bubble_flits
                busy[record.cid] = busy.get(record.cid, 0) + record.busy_ns
        stats.channel_records = [
            ChannelRecord(
                cid=channel.cid,
                src=channel.src,
                dst=channel.dst,
                data_flits=data.get(channel.cid, 0),
                bubble_flits=bubble.get(channel.cid, 0),
                busy_ns=busy.get(channel.cid, 0),
            )
            for channel in network.channels()
        ]
    trace: Trace | None = None
    if config.trace:
        events = [
            event for result in results for event in (result.trace_events or ())
        ]
        # Stable sort over the shard-ordered concatenation: deterministic
        # regardless of completion order.  Same-timestamp events of
        # different shards keep shard order, which may differ from the
        # reference engine's global tie-break (see observable_fingerprint).
        events.sort(key=lambda event: event.time_ns)
        trace = Trace(events=events)
    messages = {
        view.mid: view for result in results for view in result.messages
    }
    messages = dict(sorted(messages.items()))
    return stats, trace, messages, now


def run_region_parallel(
    network: Network,
    routing: RoutingAlgorithm,
    config: SimulationConfig,
    workload: Iterable[Any],
    until_ns: int | None = None,
    max_workers: int | None = None,
    telemetry: "Telemetry | NullTelemetry | None" = None,
) -> RegionRunResult:
    """Run one simulation region-parallel; results match the reference engine.

    Parameters
    ----------
    network, routing, config:
        Exactly what :class:`WormholeSimulator` takes.  ``config.region_count``
        sets the region partition; the routing's selection function must be
        stateless (checked).
    workload:
        Open-loop submissions: an iterable of objects with ``source``,
        ``destinations``, ``at_ns`` and ``metadata`` attributes
        (:class:`repro.traffic.workload.MessageSpec`; a
        :class:`~repro.traffic.workload.Workload` iterates as such).
        Message ids are assigned by position, matching a reference engine
        fed the same sequence.
    until_ns:
        Bounded-run horizon (one window; resumption is not supported here).
    max_workers:
        Worker processes; ``None`` defers to ``$REPRO_REGION_WORKERS`` then
        one per CPU, ``0``/``1`` run every shard in-process (identical
        results, no pickling — what most tests use).
    telemetry:
        Wall-clock recorder (``repro.obs``) for plan/execute/validate/merge
        phase spans; shard engines record their own tracks, shipped back
        and merged under ``shard{i}`` labels.  ``None`` defers to
        ``config.telemetry``; recording never changes any observable result
        (the fingerprint tests hold both settings to bit-identity).

    Returns a :class:`RegionRunResult`; ``stats``/``trace``/``messages``
    mirror the reference engine's observables up to same-timestamp
    cross-shard trace order (canonicalized by
    :func:`observable_fingerprint`).  With one region — or any workload
    that collapses into one shard — the run *is* a reference run.

    Shards are planned optimistically from preferred routes and validated
    against the channels each shard engine actually touched; colliding
    shards merge and re-run until the touched sets are pairwise disjoint
    (``region_conflict_reruns`` counts the repairs).  Both the plan and
    the repair sequence are deterministic, so the result — and the exact
    set of shard runs performed — is a pure function of the inputs.

    Raises :class:`~repro.errors.ConfigurationError` for stateful
    selections and :class:`~repro.errors.DeadlockError` when a shard
    deadlocks (shards are checked in shard order, so the raised error is
    deterministic; its report describes that shard's stall, not the global
    picture the reference engine would print).
    """
    selection = getattr(routing, "selection", None)
    if selection is not None and not getattr(selection, "stateless", True):
        raise ConfigurationError(
            "region-parallel execution requires a stateless selection function: "
            f"{getattr(selection, 'name', type(selection).__name__)!r} consumes "
            "shared RNG state per decision, which couples every message in the "
            "run (see docs/region_parallel.md)"
        )
    tel: Telemetry | NullTelemetry = (
        telemetry
        if telemetry is not None
        else (Telemetry(track="region") if config.telemetry else NULL_TELEMETRY)
    )
    specs = list(workload)
    tree = getattr(routing, "tree", None)
    with tel.span("region.plan", messages=len(specs)):
        assignment = assign_regions(network, config.region_count, tree=tree)
        plan = plan_shards(
            network,
            routing,
            assignment,
            [(spec.source, spec.destinations) for spec in specs],
        )
    submissions = tuple(
        (
            mid,
            spec.source,
            tuple(spec.destinations),
            spec.at_ns,
            dict(spec.metadata),
        )
        for mid, spec in enumerate(specs)
    )
    # Groups of message indices; starts as the optimistic plan and coarsens
    # whenever validation detects a touched-set collision.  The empty
    # workload still runs one empty engine so the reference observables
    # (zeroed channel records, the bounded-run clock advance, ...) are
    # reproduced exactly.
    groups: list[tuple[int, ...]] = list(plan.shards) or [()]
    results: list[_ShardResult | None] = [None] * len(groups)
    processes = 0
    reruns = 0
    rounds = 0

    def run_pending() -> None:
        nonlocal processes, rounds
        pending = [index for index, result in enumerate(results) if result is None]
        tasks = {
            index: _ShardTask(
                network=network,
                routing=routing,
                config=config,
                submissions=tuple(submissions[mid] for mid in groups[index]),
                until_ns=until_ns,
                collect_telemetry=tel.enabled,
            )
            for index in pending
        }
        workers = _resolve_workers(max_workers, len(pending))
        with tel.span(
            "region.execute", round=rounds, shards=len(pending), workers=workers
        ):
            if workers <= 1 or len(pending) == 1:
                for index in pending:
                    results[index] = _run_shard_task(tasks[index])
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [(index, pool.submit(_run_shard_task, tasks[index])) for index in pending]
                    # Collect in shard order: deterministic merge input and a
                    # deterministic first error (e.g. a shard's DeadlockError).
                    for index, future in futures:
                        results[index] = future.result()
                processes = max(processes, workers)
        rounds += 1

    run_pending()
    while len(groups) > 1:
        # Validate: the merged result is exact iff the per-shard touched
        # sets are pairwise disjoint (see the module docstring).  Colliding
        # shards merge — union-find over shard indices keyed by the first
        # shard to claim each channel — and re-run together.
        tel.begin("region.validate", shards=len(groups))
        parent = list(range(len(groups)))

        def find(index: int) -> int:
            while parent[index] != index:
                parent[index] = parent[parent[index]]
                index = parent[index]
            return index

        claimed: dict[int, int] = {}
        clean = True
        for index, result in enumerate(results):
            assert result is not None
            for cid in result.touched_cids:
                holder = claimed.setdefault(cid, index)
                if holder != index:
                    parent[find(index)] = find(holder)
                    clean = False
        tel.end(clean=clean)
        if clean:
            break
        merged: dict[int, list[int]] = {}
        for index in range(len(groups)):
            merged.setdefault(find(index), []).append(index)
        next_groups: list[tuple[int, ...]] = []
        next_results: list[_ShardResult | None] = []
        for members in sorted(merged.values(), key=lambda ms: min(groups[m][0] for m in ms if groups[m])):
            if len(members) == 1:
                # Untouched by the collision: keep the finished result.
                next_groups.append(groups[members[0]])
                next_results.append(results[members[0]])
            else:
                next_groups.append(tuple(sorted(mid for m in members for mid in groups[m])))
                next_results.append(None)
                reruns += 1
        groups = next_groups
        results = next_results
        run_pending()

    final_results = [result for result in results if result is not None]
    with tel.span("region.merge", shards=len(final_results)):
        stats, trace, messages, now = _merge_results(
            final_results, network, config, until_ns
        )
        for index, result in enumerate(final_results):
            if result.telemetry is not None:
                tel.merge_child(result.telemetry, track=f"shard{index}")
    tel.gauge("region.count", assignment.num_regions)
    tel.gauge("region.planned_shards", len(plan.shards))
    tel.gauge("region.shards", len(groups))
    tel.gauge("region.conflict_reruns", reruns)
    tel.gauge("region.boundary_channels", len(assignment.boundary_cids))
    tel.gauge("region.confined_messages", plan.confined_messages)
    tel.gauge("region.coupled_messages", plan.coupled_messages)
    tel.gauge("region.processes", processes)
    return RegionRunResult(
        stats=stats,
        trace=trace,
        messages=messages,
        now=now,
        region_count=assignment.num_regions,
        region_planned_shards=len(plan.shards),
        region_shards=len(groups),
        region_conflict_reruns=reruns,
        region_boundary_channels=len(assignment.boundary_cids),
        region_confined_messages=plan.confined_messages,
        region_coupled_messages=plan.coupled_messages,
        region_processes=processes,
        telemetry=tel,
    )


# ----------------------------------------------------------------------
# The equivalence fingerprint
# ----------------------------------------------------------------------
def _canonical_value(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(item) for item in value)
    if isinstance(value, dict):
        return tuple(
            sorted((key, _canonical_value(item)) for key, item in value.items())
        )
    return value


def _canonical_event(event: TraceEvent) -> tuple:
    return (
        event.time_ns,
        event.kind,
        tuple(sorted((key, _canonical_value(value)) for key, value in event.fields.items())),
    )


def _canonical_trace(trace: Trace | None) -> dict | None:
    """Trace grouped per message, preserving each message's event order.

    Every engine trace kind carries a ``message`` field; per-message
    streams are total-order-preserved by both the reference engine and the
    shard decomposition, so grouping by message (and sorting the rare
    messageless bucket canonically) removes exactly the same-timestamp
    cross-message interleaving that is an engine tie-breaking artifact —
    and nothing else.
    """
    if trace is None:
        return None
    per_message: dict[Any, list[tuple]] = {}
    for event in trace.events:
        per_message.setdefault(event.fields.get("message"), []).append(
            _canonical_event(event)
        )
    grouped = {
        key: tuple(events) for key, events in per_message.items() if key is not None
    }
    floating = per_message.get(None)
    return {
        "per_message": dict(sorted(grouped.items())),
        "floating": tuple(sorted(floating)) if floating else (),
    }


def observable_fingerprint(
    stats: SimulationStats,
    trace: Trace | None,
    messages: Mapping[int, Any],
    now: int,
) -> dict:
    """Canonical rendering of everything observable about a finished run.

    Two runs are equivalent under the region-parallel contract iff their
    fingerprints compare equal.  The canonicalization is *minimal*: message
    records sort by ``(completed_ns, mid)`` (the reference appends in
    completion order with an arbitrary same-timestamp tie-break), trace
    events group per message with each stream's order preserved, channel
    records sort by cid.  Timestamps, per-message event streams, delivery
    times, hop/bubble/flit counters and the final clock are compared raw —
    byte-identical or the comparison fails.
    """
    summary = {
        key: (None if value != value else value)  # normalise NaN for ==
        for key, value in stats.summary().items()
    }
    records = tuple(
        sorted(
            (
                (
                    record.mid,
                    record.kind,
                    record.source,
                    record.num_destinations,
                    record.length_flits,
                    record.created_ns,
                    record.startup_began_ns,
                    record.completed_ns,
                    record.latency_from_creation_ns,
                    record.latency_from_startup_ns,
                    record.hops,
                    _canonical_value(record.metadata),
                )
                for record in stats.records
            ),
            key=lambda row: (row[7], row[0]),
        )
    )
    return {
        "summary": summary,
        "records": records,
        "trace": _canonical_trace(trace),
        "deliveries": {
            mid: dict(message.delivered_ns) for mid, message in sorted(messages.items())
        },
        "completions": {
            mid: message.completed_ns for mid, message in sorted(messages.items())
        },
        "hops": {mid: message.hops for mid, message in sorted(messages.items())},
        "channels": sorted(
            (record.cid, record.data_flits, record.bubble_flits, record.busy_ns)
            for record in stats.channel_records
        ),
        "now": now,
    }


def simulator_fingerprint(simulator: WormholeSimulator, stats: SimulationStats | None = None) -> dict:
    """:func:`observable_fingerprint` of a (finished) reference engine run."""
    return observable_fingerprint(
        stats=simulator.stats if stats is None else stats,
        trace=simulator.trace,
        messages=simulator.messages,
        now=simulator.now,
    )
