"""Structured event tracing.

Tracing exists for two purposes: debugging the simulator itself, and the
Figure-1 walk-through example, which replays the paper's §3.2 narrative
(header replicated at node 4 towards nodes 6 and 7, the branch towards 7
advancing while the branch towards 8 is blocked, bubbles propagated on the
free branch, and so on) with actual simulator events.

Tracing is disabled by default because materialising an event object per
flit movement roughly doubles the cost of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced simulator event."""

    time_ns: int
    kind: str
    fields: dict

    def __str__(self) -> str:
        details = ", ".join(f"{key}={value}" for key, value in sorted(self.fields.items()))
        return f"[{self.time_ns:>10} ns] {self.kind:<10} {details}"


@dataclass
class Trace:
    """An append-only list of :class:`TraceEvent` with simple filters."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, time_ns: int, kind: str, **fields) -> None:
        """Append one event."""
        self.events.append(TraceEvent(time_ns=time_ns, kind=kind, fields=fields))

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """Events whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def for_message(self, mid: int) -> list[TraceEvent]:
        """Events that mention message ``mid``."""
        return [event for event in self.events if event.fields.get("message") == mid]

    def signature(self) -> list[tuple[int, str, dict]]:
        """Equality-comparable rendering of the whole trace.

        Used by the fast-path trace-equivalence tests: two runs are
        observably identical when their signatures compare equal (same
        events, same timestamps, same payloads, same order).
        """
        return [(event.time_ns, event.kind, event.fields) for event in self.events]

    def render(self, events: Iterable[TraceEvent] | None = None) -> str:
        """Human-readable multi-line rendering."""
        chosen = self.events if events is None else list(events)
        return "\n".join(str(event) for event in chosen)

    def __len__(self) -> int:
        return len(self.events)
