"""Sanctioned process-environment knobs.

The determinism contract (``docs/determinism.md``) bans ambient environment
reads in result paths: a simulation or sweep result must be a pure function
of spec + config.  A small family of *runtime* knobs is exempt — values
that change how fast work runs, never what any run reports: the worker
counts ``REPRO_REGION_WORKERS`` and ``REPRO_SWEEP_WORKERS``.  (The scale
selectors and the store-location knob are *not* read here: scale changes
what is computed and the store module is an R9 sink that may not import
this package — those sites keep their own justified pragmas.)

:func:`env_knob` is the single sanctioned read path for such knobs.  It
lives in ``repro.obs`` because the package carries the rule-scoped
repro-lint sanction (R4 excludes ``src/repro/obs/``; R9's firewall keeps
everything read here out of observable results), so call sites need no
per-site pragma.  The contract for callers: a value read through
``env_knob`` may flow into scheduling decisions and telemetry, never into
``stats``/``trace``/store rows — R9 checks that statically.
"""

from __future__ import annotations

import os

__all__ = ["env_knob"]


def env_knob(name: str, default: str = "") -> str:
    """Read the runtime knob ``name`` from the process environment.

    Returns ``default`` when unset.  Only wall-clock/placement knobs may be
    read here (results must stay bit-identical for every value); anything
    that changes observable results must flow through configuration
    objects or sweep specs instead.
    """
    return os.environ.get(name, default)
