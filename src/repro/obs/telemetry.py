"""The span/metric recorder and its zero-overhead no-op twin.

One :class:`Telemetry` instance records one *track* of wall-clock
observability — the main process, one region shard, one sweep worker.
Worker processes ship their telemetry back as a plain picklable payload
(:meth:`Telemetry.to_payload`) and the parent folds it in with
:meth:`Telemetry.merge_child`, prefixing the child's metric names with its
track label so nothing collides.

Three metric families, chosen to stay cheap on hot paths:

* **spans** — named ``[start_ns, start_ns + dur_ns)`` intervals on the
  monotonic clock, with free-form ``attrs``.  Nesting is by a plain open
  stack (:meth:`begin`/:meth:`end` or the :meth:`span` context manager);
  pre-measured intervals are recorded directly with :meth:`span_at`.  The
  span list is bounded (``max_spans``); overflow increments
  ``spans_dropped`` instead of growing without limit.
* **counters** — monotonically accumulated integers (``counter``).
* **gauges** — last-write-wins numbers (``gauge``); the engine publishes
  its deterministic ``coalesce_*`` counter values here at the end of every
  ``run()`` so one snapshot unifies wall-clock spans with the normative
  counters (re-publication after a later window simply overwrites).
* **values** — bounded distributions (``value``): count/total/min/max per
  name, used for per-probe durations where a span per event would be too
  much data.

The clock is injectable (``clock=``) so exporter tests are golden-file
deterministic; the default is the host's monotonic ``perf_counter_ns``
(sanctioned here and only here — repro-lint rule R4 excludes
``src/repro/obs/`` in exchange for rule R9's firewall, which keeps every
telemetry value out of the simulation's observable results).

:data:`NULL_TELEMETRY` is the disabled twin: a module-level singleton whose
recording methods do nothing and whose ``span()`` hands back a shared
reusable context manager.  Consumers branch on ``telemetry.enabled`` once,
outside their hot loops, and keep zero per-event overhead when telemetry
is off.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Mapping

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]

#: Default bound on the recorded span list (see ``spans_dropped``).
DEFAULT_MAX_SPANS = 100_000


class Telemetry:
    """A live telemetry recorder (one per track).

    Parameters
    ----------
    track:
        Label for the execution context this instance records ("main",
        "engine", "shard", "worker", ...); every span carries it, and
        :meth:`merge_child` rewrites it when folding worker payloads in.
    clock:
        Monotonic nanosecond clock; injectable for deterministic tests.
    max_spans:
        Bound on the span list; further spans are counted in
        ``spans_dropped`` rather than stored.
    """

    enabled: bool = True

    def __init__(
        self,
        track: str = "main",
        clock: Callable[[], int] | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.track = track
        self.clock: Callable[[], int] = (
            time.perf_counter_ns if clock is None else clock
        )
        self.max_spans = max_spans
        #: Finished spans: ``{"name", "track", "start_ns", "dur_ns", "attrs"}``.
        self.spans: list[dict[str, Any]] = []
        self.spans_dropped = 0
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        #: ``name -> {"count", "total", "min", "max"}`` distributions.
        self.values: dict[str, dict[str, float]] = {}
        self._stack: list[dict[str, Any]] = []

    # -- spans ----------------------------------------------------------
    def begin(self, name: str, **attrs: Any) -> None:
        """Open a nested span; close it with :meth:`end`."""
        self._stack.append(
            {"name": name, "start_ns": self.clock(), "attrs": dict(attrs)}
        )

    def end(self, **attrs: Any) -> None:
        """Close the innermost open span (extra ``attrs`` merge in)."""
        open_span = self._stack.pop()
        if attrs:
            open_span["attrs"].update(attrs)
        self.span_at(
            open_span["name"],
            open_span["start_ns"],
            self.clock(),
            **open_span["attrs"],
        )

    def span(self, name: str, **attrs: Any) -> "_SpanContext":
        """Context manager recording one span around the ``with`` body."""
        return _SpanContext(self, name, attrs)

    def span_at(self, name: str, start_ns: int, end_ns: int, **attrs: Any) -> None:
        """Record an already-measured span directly."""
        if len(self.spans) >= self.max_spans:
            self.spans_dropped += 1
            return
        self.spans.append(
            {
                "name": name,
                "track": self.track,
                "start_ns": int(start_ns),
                "dur_ns": max(0, int(end_ns) - int(start_ns)),
                "attrs": attrs,
            }
        )

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op when none)."""
        if self._stack:
            self._stack[-1]["attrs"].update(attrs)

    # -- scalar metrics -------------------------------------------------
    def counter(self, name: str, delta: int = 1) -> None:
        """Accumulate an integer counter."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Record a last-write-wins number."""
        self.gauges[name] = value

    def value(self, name: str, observation: float) -> None:
        """Fold one observation into the named bounded distribution."""
        dist = self.values.get(name)
        if dist is None:
            self.values[name] = {
                "count": 1,
                "total": observation,
                "min": observation,
                "max": observation,
            }
            return
        dist["count"] += 1
        dist["total"] += observation
        if observation < dist["min"]:
            dist["min"] = observation
        if observation > dist["max"]:
            dist["max"] = observation

    # -- aggregation helpers --------------------------------------------
    def span_total_ns(self, name: str) -> int:
        """Summed duration of every recorded span called ``name``."""
        return sum(span["dur_ns"] for span in self.spans if span["name"] == name)

    def span_count(self, name: str) -> int:
        """Number of recorded spans called ``name``."""
        return sum(1 for span in self.spans if span["name"] == name)

    def iter_spans(self, name: str) -> Iterator[dict[str, Any]]:
        """Recorded spans called ``name``, in record order."""
        return (span for span in self.spans if span["name"] == name)

    # -- worker shipping ------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """Plain picklable rendering for the worker→parent boundary."""
        return {
            "track": self.track,
            "spans": list(self.spans),
            "spans_dropped": self.spans_dropped,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "values": {name: dict(dist) for name, dist in self.values.items()},
        }

    def merge_child(self, payload: Mapping[str, Any], track: str) -> None:
        """Fold a child payload (:meth:`to_payload`) into this recorder.

        The child's spans are re-labelled with ``track``; its counter,
        gauge and value names are prefixed ``"{track}/{name}"`` so parallel
        children never collide.  Child clocks are process-local monotonic
        counters, so cross-track span timestamps are only comparable within
        one track — exactly what the per-track Chrome-trace rendering
        shows.
        """
        for span in payload.get("spans", ()):
            if len(self.spans) >= self.max_spans:
                self.spans_dropped += 1
                continue
            merged = dict(span)
            merged["track"] = track
            self.spans.append(merged)
        self.spans_dropped += int(payload.get("spans_dropped", 0))
        for name, delta in payload.get("counters", {}).items():
            self.counter(f"{track}/{name}", delta)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(f"{track}/{name}", value)
        for name, dist in payload.get("values", {}).items():
            key = f"{track}/{name}"
            mine = self.values.get(key)
            if mine is None:
                self.values[key] = dict(dist)
            else:
                mine["count"] += dist["count"]
                mine["total"] += dist["total"]
                mine["min"] = min(mine["min"], dist["min"])
                mine["max"] = max(mine["max"], dist["max"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry(track={self.track!r}, spans={len(self.spans)}, "
            f"counters={len(self.counters)}, values={len(self.values)})"
        )


class _SpanContext:
    """Reusable ``with telemetry.span(...)`` support."""

    __slots__ = ("_telemetry", "_name", "_attrs", "_start_ns")

    def __init__(self, telemetry: Telemetry, name: str, attrs: dict[str, Any]):
        self._telemetry = telemetry
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanContext":
        self._start_ns = self._telemetry.clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._telemetry.span_at(
            self._name, self._start_ns, self._telemetry.clock(), **self._attrs
        )


class _NullSpanContext:
    """Shared inert context manager handed out by :class:`NullTelemetry`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTelemetry:
    """The disabled recorder: every method is an allocation-free no-op.

    ``enabled`` is ``False`` so consumers can hoist the branch out of hot
    loops (the engine selects its un-instrumented probe once per ``run()``);
    code that does not care simply calls the no-op methods.  ``clock`` is
    ``None`` — holders that need a clock must check ``enabled`` first.
    """

    enabled: bool = False
    track: str = "null"
    clock: None = None
    spans: tuple = ()
    spans_dropped: int = 0
    counters: Mapping[str, int] = {}
    gauges: Mapping[str, float] = {}
    values: Mapping[str, dict[str, float]] = {}

    def begin(self, name: str, **attrs: Any) -> None:
        return None

    def end(self, **attrs: Any) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def span_at(self, name: str, start_ns: int, end_ns: int, **attrs: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None

    def counter(self, name: str, delta: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def value(self, name: str, observation: float) -> None:
        return None

    def span_total_ns(self, name: str) -> int:
        return 0

    def span_count(self, name: str) -> int:
        return 0

    def iter_spans(self, name: str) -> Iterator[dict[str, Any]]:
        return iter(())

    def to_payload(self) -> dict[str, Any]:
        return {
            "track": self.track,
            "spans": [],
            "spans_dropped": 0,
            "counters": {},
            "gauges": {},
            "values": {},
        }

    def merge_child(self, payload: Mapping[str, Any], track: str) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NULL_TELEMETRY"


#: The module-level no-op singleton every consumer holds when telemetry is
#: off — one shared instance, so ``telemetry is NULL_TELEMETRY`` is a valid
#: (and the cheapest) disabled-check.
NULL_TELEMETRY = NullTelemetry()
