"""Telemetry exporters and the snapshot validator.

Two renderings of one :class:`~repro.obs.telemetry.Telemetry`:

* :func:`write_snapshot` — the *unified* structured JSON snapshot
  (``snapshot.schema.json``, schema-versioned): wall-clock spans, counters
  and value distributions side by side with whatever deterministic gauge
  values the engine/region layers published (``engine.coalesce_*``,
  ``region.*``).  This is the machine-readable artifact CI validates and
  ``repro-spam obs summarize`` reads.
* :func:`write_chrome_trace` — Chrome ``trace_event`` JSON (the
  ``{"traceEvents": [...]}`` object form), loadable in Perfetto /
  ``chrome://tracing`` for timeline inspection.  Each telemetry track maps
  to one named thread; spans become complete (``"ph": "X"``) events.

Validation is a hand-rolled JSON-Schema *subset* interpreter
(:func:`validate_snapshot`): the repository deliberately has no
``jsonschema`` dependency, and the subset (type/const/required/properties/
additionalProperties/items/minimum) covers everything the checked-in
schema uses — the schema file stays standard so external tooling can use
it too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .telemetry import NullTelemetry, Telemetry

__all__ = [
    "SNAPSHOT_SCHEMA_ID",
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot_dict",
    "write_snapshot",
    "chrome_trace_events",
    "write_chrome_trace",
    "load_snapshot_schema",
    "validate_snapshot",
    "validate_chrome_trace",
    "summarize_snapshot",
]

SNAPSHOT_SCHEMA_ID = "repro.obs/snapshot"
SNAPSHOT_SCHEMA_VERSION = 1

_SCHEMA_PATH = Path(__file__).with_name("snapshot.schema.json")


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------
def snapshot_dict(telemetry: "Telemetry | NullTelemetry") -> dict[str, Any]:
    """The schema-versioned snapshot rendering of ``telemetry``."""
    return {
        "schema": SNAPSHOT_SCHEMA_ID,
        "version": SNAPSHOT_SCHEMA_VERSION,
        "track": telemetry.track,
        "spans": [dict(span) for span in telemetry.spans],
        "spans_dropped": telemetry.spans_dropped,
        "counters": dict(sorted(telemetry.counters.items())),
        "gauges": dict(sorted(telemetry.gauges.items())),
        "values": {
            name: dict(dist) for name, dist in sorted(telemetry.values.items())
        },
    }


def write_snapshot(telemetry: "Telemetry | NullTelemetry", path: "str | Path") -> Path:
    """Write the snapshot JSON to ``path`` (parents created) and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(snapshot_dict(telemetry), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


# ----------------------------------------------------------------------
# Chrome trace / Perfetto
# ----------------------------------------------------------------------
def chrome_trace_events(telemetry: "Telemetry | NullTelemetry") -> list[dict[str, Any]]:
    """``trace_event`` list: one complete event per span, one named thread
    per track (child tracks keep process-local clocks, so cross-track
    alignment is per-thread, not global — exactly how Perfetto renders
    it)."""
    tids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in telemetry.spans:
        track = span["track"]
        tid = tids.get(track)
        if tid is None:
            tid = len(tids)
            tids[track] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        events.append(
            {
                "name": span["name"],
                "cat": "repro.obs",
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": span["start_ns"] / 1000.0,
                "dur": span["dur_ns"] / 1000.0,
                "args": dict(span.get("attrs", {})),
            }
        )
    return events


def write_chrome_trace(telemetry: "Telemetry | NullTelemetry", path: "str | Path") -> Path:
    """Write the Chrome-trace JSON to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "displayTimeUnit": "ms",
        "otherData": {"exporter": SNAPSHOT_SCHEMA_ID},
        "traceEvents": chrome_trace_events(telemetry),
    }
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def validate_chrome_trace(document: Any) -> list[str]:
    """Well-formedness errors of a loaded Chrome-trace document (``[]`` = ok).

    Accepts both the object form (``{"traceEvents": [...]}``) and the bare
    array form; checks the fields Perfetto's importer requires.
    """
    if isinstance(document, Mapping):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["traceEvents: missing or not an array"]
    elif isinstance(document, list):
        events = document
    else:
        return ["document: neither a trace object nor an event array"]
    errors: list[str] = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            errors.append(f"{where}: missing phase 'ph'")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing 'name'")
        if phase == "X":
            for field in ("ts", "dur", "pid", "tid"):
                if not isinstance(event.get(field), (int, float)) or isinstance(
                    event.get(field), bool
                ):
                    errors.append(f"{where}: complete event needs numeric {field!r}")
    return errors


# ----------------------------------------------------------------------
# Schema validation (JSON-Schema subset; no external dependency)
# ----------------------------------------------------------------------
def load_snapshot_schema() -> dict[str, Any]:
    """The checked-in snapshot schema as a dict."""
    return json.loads(_SCHEMA_PATH.read_text(encoding="utf-8"))


def _type_ok(value: Any, type_name: str) -> bool:
    if type_name == "object":
        return isinstance(value, Mapping)
    if type_name == "array":
        return isinstance(value, list)
    if type_name == "string":
        return isinstance(value, str)
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "boolean":
        return isinstance(value, bool)
    if type_name == "null":
        return value is None
    return True  # unknown type names never fail (forward compatibility)


def _validate(value: Any, schema: Mapping[str, Any], path: str, errors: list[str]) -> None:
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    type_spec = schema.get("type")
    if type_spec is not None:
        names = type_spec if isinstance(type_spec, list) else [type_spec]
        if not any(_type_ok(value, name) for name in names):
            errors.append(f"{path}: expected type {type_spec}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")
        return
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        minimum = schema.get("minimum")
        if minimum is not None and value < minimum:
            errors.append(f"{path}: {value!r} below minimum {minimum!r}")
    if isinstance(value, Mapping):
        properties = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        additional = schema.get("additionalProperties", True)
        for name, item in value.items():
            subpath = f"{path}.{name}"
            if name in properties:
                _validate(item, properties[name], subpath, errors)
            elif additional is False:
                errors.append(f"{path}: unexpected property {name!r}")
            elif isinstance(additional, Mapping):
                _validate(item, additional, subpath, errors)
    elif isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, Mapping):
            for index, item in enumerate(value):
                _validate(item, items, f"{path}[{index}]", errors)


def validate_snapshot(
    document: Any, schema: Mapping[str, Any] | None = None
) -> list[str]:
    """Validation errors of ``document`` against the snapshot schema.

    Returns ``[]`` when the document conforms.  ``schema`` defaults to the
    checked-in ``snapshot.schema.json``.
    """
    errors: list[str] = []
    _validate(document, load_snapshot_schema() if schema is None else schema, "$", errors)
    return errors


# ----------------------------------------------------------------------
# Summaries (the ``repro-spam obs summarize`` backend)
# ----------------------------------------------------------------------
def _strip_track(name: str) -> str:
    """Metric name with any ``track/`` prefixes removed."""
    return name.rsplit("/", 1)[-1]


def summarize_snapshot(document: Mapping[str, Any]) -> dict[str, list[dict[str, Any]]]:
    """Aggregated tables from a loaded snapshot document.

    Returns ``{"tiers": [...], "spans": [...]}``:

    * ``tiers`` — per-tier probe time attribution, aggregated across every
      track: one row per ``engine.probe.<tier>_ns`` distribution with the
      probe count, total milliseconds and share of total probe time.
    * ``spans`` — per-span-name totals (count, total ms), aggregated
      across tracks, sorted by total descending — where the wall-clock
      actually went.
    """
    values: Mapping[str, Mapping[str, Any]] = document.get("values", {})
    tier_totals: dict[str, dict[str, float]] = {}
    for name, dist in values.items():
        base = _strip_track(name)
        if not (base.startswith("engine.probe.") and base.endswith("_ns")):
            continue
        tier = base[len("engine.probe.") : -len("_ns")]
        row = tier_totals.setdefault(tier, {"count": 0, "total_ns": 0.0})
        row["count"] += int(dist["count"])
        row["total_ns"] += float(dist["total"])
    probe_total_ns = sum(row["total_ns"] for row in tier_totals.values())
    tiers = [
        {
            "tier": tier,
            "probes": int(row["count"]),
            "total_ms": row["total_ns"] / 1e6,
            "mean_us": (row["total_ns"] / row["count"]) / 1e3 if row["count"] else 0.0,
            "share": row["total_ns"] / probe_total_ns if probe_total_ns else 0.0,
        }
        for tier, row in sorted(
            tier_totals.items(), key=lambda item: -item[1]["total_ns"]
        )
    ]
    span_totals: dict[str, dict[str, float]] = {}
    for span in document.get("spans", ()):
        row = span_totals.setdefault(span["name"], {"count": 0, "total_ns": 0.0})
        row["count"] += 1
        row["total_ns"] += int(span["dur_ns"])
    spans = [
        {
            "span": name,
            "count": int(row["count"]),
            "total_ms": row["total_ns"] / 1e6,
        }
        for name, row in sorted(span_totals.items(), key=lambda item: -item[1]["total_ns"])
    ]
    return {"tiers": tiers, "spans": spans}
