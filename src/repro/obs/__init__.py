"""``repro.obs``: wall-clock observability behind the observables firewall.

The engine's normative observability surface (``coalesce_*`` / ``region_*``
counters, ``docs/engine_counters.md``) is *deterministic*: facts about how a
run executed that are pure functions of the inputs.  This package is the
complementary *wall-clock* surface — spans, counters and value
distributions measured on the host's monotonic clock — used to see where
engine, region and sweep time actually goes.

Wall-clock readings are nondeterministic by nature, so everything here
lives behind the **observables firewall** (``docs/observability.md``,
enforced statically by repro-lint rule R9): telemetry values may describe a
run, but may never flow into ``stats``/``trace``/store rows or any
fingerprinted observable.  The firewall direction is one-way — engine code
writes *into* telemetry; nothing reads telemetry back *out* into results.
Correspondingly, ``repro.obs`` itself is a leaf package: it imports only
the standard library, never the simulator or sweep layers.

Public surface:

* :class:`~repro.obs.telemetry.Telemetry` — the span/metric recorder, and
  :data:`~repro.obs.telemetry.NULL_TELEMETRY`, the module-level no-op
  singleton every consumer holds when telemetry is off.
* :mod:`repro.obs.export` — the schema-versioned JSON snapshot, the
  Chrome-trace/Perfetto ``trace_event`` exporter, and the snapshot
  validator used by tests and CI.
* :mod:`repro.obs.runtime` — the sanctioned process-environment knob
  reader (parallelism/scale knobs that may change wall-clock, never
  results).
"""

from .export import (
    SNAPSHOT_SCHEMA_ID,
    SNAPSHOT_SCHEMA_VERSION,
    chrome_trace_events,
    load_snapshot_schema,
    summarize_snapshot,
    validate_chrome_trace,
    validate_snapshot,
    write_chrome_trace,
    write_snapshot,
)
from .runtime import env_knob
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "SNAPSHOT_SCHEMA_ID",
    "SNAPSHOT_SCHEMA_VERSION",
    "chrome_trace_events",
    "load_snapshot_schema",
    "summarize_snapshot",
    "validate_chrome_trace",
    "validate_snapshot",
    "write_chrome_trace",
    "write_snapshot",
    "env_knob",
]
