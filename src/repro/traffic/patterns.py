"""Destination-set selection patterns.

The paper's experiments pick multicast destinations uniformly at random
among the processors; the partitioning extension additionally motivates a
*clustered* pattern (destinations contiguous in the spanning-tree order).
Sources are likewise drawn uniformly among processors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import WorkloadError
from ..spanning.tree import SpanningTree
from ..topology.network import Network

__all__ = [
    "uniform_destinations",
    "clustered_destinations",
    "broadcast_destinations",
    "uniform_source",
]


def uniform_source(network: Network, rng: np.random.Generator) -> int:
    """A uniformly random source processor."""
    processors = network.processors()
    if not processors:
        raise WorkloadError("network has no processors")
    return int(processors[int(rng.integers(0, len(processors)))])


def uniform_destinations(
    network: Network,
    source: int,
    count: int,
    rng: np.random.Generator,
) -> list[int]:
    """``count`` distinct processors chosen uniformly at random (excluding the source)."""
    candidates = [p for p in network.processors() if p != source]
    if count < 1:
        raise WorkloadError("destination count must be positive")
    if count > len(candidates):
        raise WorkloadError(
            f"cannot choose {count} destinations from {len(candidates)} candidate processors"
        )
    chosen = rng.choice(len(candidates), size=count, replace=False)
    return sorted(int(candidates[i]) for i in chosen)


def clustered_destinations(
    network: Network,
    tree: SpanningTree,
    source: int,
    count: int,
    rng: np.random.Generator,
) -> list[int]:
    """``count`` processors contiguous in the spanning tree's DFS order.

    A random window of the DFS ordering of processors is selected (excluding
    the source).  Clustered destination sets have deep LCAs and therefore
    exercise the destination-partitioning extension.
    """
    from ..core.partition import dfs_order  # local import to avoid a package cycle

    candidates = [p for p in network.processors() if p != source]
    if count < 1 or count > len(candidates):
        raise WorkloadError("invalid clustered destination count")
    order = dfs_order(tree)
    ranked = sorted(candidates, key=lambda node: order[node])
    start = int(rng.integers(0, len(ranked) - count + 1))
    return sorted(ranked[start : start + count])


def broadcast_destinations(network: Network, source: int) -> list[int]:
    """Every processor except the source."""
    return [p for p in network.processors() if p != source]
