"""Message arrival processes.

The paper's mixed-traffic experiments (Figure 3) draw message arrivals from
"a negative binomial distribution with varying average arrival rates".  This
module implements that process along with Poisson and deterministic
processes (useful for tests and for sensitivity studies), all parameterised
by the *average arrival rate per processor* in messages per microsecond —
the quantity on Figure 3's x-axis.

All processes generate integer nanosecond inter-arrival times from an
explicit :class:`numpy.random.Generator` so that workloads are reproducible.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "NegativeBinomialArrivals",
    "DeterministicArrivals",
    "make_arrival_process",
]

_NS_PER_US = 1000


class ArrivalProcess(abc.ABC):
    """Generates successive message inter-arrival times for one processor."""

    #: Mean inter-arrival time in nanoseconds.
    mean_interarrival_ns: float

    @abc.abstractmethod
    def next_interarrival_ns(self, rng: np.random.Generator) -> int:
        """Draw the next inter-arrival time (nanoseconds, at least 1)."""

    def arrival_times_ns(
        self, rng: np.random.Generator, count: int, start_ns: int = 0
    ) -> list[int]:
        """Absolute arrival times of the next ``count`` messages."""
        times = []
        current = start_ns
        for _ in range(count):
            current += self.next_interarrival_ns(rng)
            times.append(current)
        return times

    @property
    def average_rate_per_us(self) -> float:
        """Average arrival rate in messages per microsecond."""
        return _NS_PER_US / self.mean_interarrival_ns


def _mean_from_rate(rate_per_us: float) -> float:
    if rate_per_us <= 0:
        raise ConfigurationError("arrival rate must be positive")
    return _NS_PER_US / rate_per_us


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Exponential (memoryless) inter-arrival times."""

    rate_per_us: float

    def __post_init__(self) -> None:
        self.mean_interarrival_ns = _mean_from_rate(self.rate_per_us)

    def next_interarrival_ns(self, rng: np.random.Generator) -> int:
        return max(1, int(round(rng.exponential(self.mean_interarrival_ns))))


@dataclass
class NegativeBinomialArrivals(ArrivalProcess):
    """Negative-binomial inter-arrival times (the paper's traffic model).

    Inter-arrival times are drawn as ``quantum_ns`` multiples of a negative
    binomial variate with ``r`` successes and success probability chosen so
    that the mean matches the requested arrival rate.  ``r = 1`` gives the
    geometric distribution (the discrete analogue of Poisson traffic); larger
    ``r`` gives smoother (less bursty) traffic.

    Parameters
    ----------
    rate_per_us:
        Average arrival rate per processor, messages per microsecond.
    r:
        Number-of-successes parameter of the negative binomial.
    quantum_ns:
        Time quantum of the discrete distribution; the default of 10 ns is
        one channel cycle.
    """

    rate_per_us: float
    r: int = 2
    quantum_ns: int = 10

    def __post_init__(self) -> None:
        if self.r < 1:
            raise ConfigurationError("negative binomial parameter r must be >= 1")
        if self.quantum_ns < 1:
            raise ConfigurationError("quantum must be at least 1 ns")
        self.mean_interarrival_ns = _mean_from_rate(self.rate_per_us)
        mean_quanta = self.mean_interarrival_ns / self.quantum_ns
        if mean_quanta <= 0:
            raise ConfigurationError("arrival rate too high for the chosen quantum")
        # Mean of numpy's negative_binomial(n=r, p) is r * (1 - p) / p.
        self._p = self.r / (self.r + mean_quanta)

    def next_interarrival_ns(self, rng: np.random.Generator) -> int:
        quanta = int(rng.negative_binomial(self.r, self._p))
        return max(1, quanta * self.quantum_ns)


@dataclass
class DeterministicArrivals(ArrivalProcess):
    """Fixed inter-arrival times (useful for tests and saturation probing)."""

    rate_per_us: float

    def __post_init__(self) -> None:
        self.mean_interarrival_ns = _mean_from_rate(self.rate_per_us)

    def next_interarrival_ns(self, rng: np.random.Generator) -> int:
        return max(1, int(round(self.mean_interarrival_ns)))


def make_arrival_process(name: str, rate_per_us: float, **kwargs) -> ArrivalProcess:
    """Create an arrival process by name (``"poisson"``, ``"negative-binomial"``
    or ``"deterministic"``)."""
    if name == "poisson":
        return PoissonArrivals(rate_per_us)
    if name in ("negative-binomial", "nbinom"):
        return NegativeBinomialArrivals(rate_per_us, **kwargs)
    if name == "deterministic":
        return DeterministicArrivals(rate_per_us)
    raise ConfigurationError(f"unknown arrival process {name!r}")
