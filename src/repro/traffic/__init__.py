"""Traffic generation: arrival processes, destination patterns and workloads.

The builders here reproduce the paper's two experimental workloads — single
multicasts with a varying number of destinations (Figure 2) and mixed 90 %
unicast / 10 % multicast traffic with negative-binomial arrivals (Figure 3) —
and add clustered-destination and broadcast patterns used by the extension
studies.
"""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    NegativeBinomialArrivals,
    PoissonArrivals,
    make_arrival_process,
)
from .patterns import (
    broadcast_destinations,
    clustered_destinations,
    uniform_destinations,
    uniform_source,
)
from .workload import MessageSpec, Workload, mixed_traffic_workload, single_multicast_workload

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "NegativeBinomialArrivals",
    "DeterministicArrivals",
    "make_arrival_process",
    "uniform_source",
    "uniform_destinations",
    "clustered_destinations",
    "broadcast_destinations",
    "MessageSpec",
    "Workload",
    "single_multicast_workload",
    "mixed_traffic_workload",
]
