"""Workload construction.

A *workload* is a plain list of :class:`MessageSpec` records (who sends what
to whom, when).  Workload builders are pure functions of a seed, so the same
workload can be replayed against different routing algorithms, selection
functions or buffer depths — which is exactly what the ablation benchmarks
do.

Two builders cover the paper's experiments:

* :func:`single_multicast_workload` — one multicast at a time from a random
  source to a random destination set (Figure 2);
* :func:`mixed_traffic_workload` — 90 % unicast / 10 % multicast traffic with
  negative-binomial arrivals at every processor (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import WorkloadError
from ..topology.network import Network
from .arrivals import ArrivalProcess, NegativeBinomialArrivals
from .patterns import uniform_destinations, uniform_source

__all__ = ["MessageSpec", "Workload", "single_multicast_workload", "mixed_traffic_workload"]


@dataclass(frozen=True, slots=True)
class MessageSpec:
    """One message of a workload."""

    source: int
    destinations: tuple[int, ...]
    at_ns: int
    metadata: dict = field(default_factory=dict)

    @property
    def is_multicast(self) -> bool:
        """``True`` when the spec addresses more than one destination."""
        return len(self.destinations) > 1


@dataclass
class Workload:
    """An ordered collection of message specs plus bookkeeping metadata."""

    name: str
    specs: list[MessageSpec] = field(default_factory=list)
    seed: int = 0
    parameters: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def num_multicasts(self) -> int:
        """Number of multicast specs."""
        return sum(1 for spec in self.specs if spec.is_multicast)

    @property
    def num_unicasts(self) -> int:
        """Number of unicast specs."""
        return len(self.specs) - self.num_multicasts

    def submit_to(self, simulator) -> list:
        """Submit every spec to a simulator; returns the created messages."""
        messages = []
        for spec in self.specs:
            messages.append(
                simulator.submit_message(
                    spec.source,
                    spec.destinations,
                    at_ns=spec.at_ns,
                    metadata=dict(spec.metadata),
                )
            )
        return messages

    def horizon_ns(self) -> int:
        """Arrival time of the last spec."""
        return max((spec.at_ns for spec in self.specs), default=0)


def single_multicast_workload(
    network: Network,
    num_destinations: int,
    samples: int,
    seed: int = 0,
    spacing_ns: int | None = None,
) -> Workload:
    """Independent single multicasts (Figure 2's workload).

    Each sample is a multicast from a uniformly random source to
    ``num_destinations`` uniformly random destinations.  Samples are spaced
    far enough apart (``spacing_ns``, default 100 µs) that consecutive
    multicasts never interact, so a single simulation run measures
    ``samples`` independent observations.
    """
    if samples < 1:
        raise WorkloadError("need at least one sample")
    rng = np.random.default_rng(seed)
    spacing = 100_000 if spacing_ns is None else spacing_ns
    specs: list[MessageSpec] = []
    for index in range(samples):
        source = uniform_source(network, rng)
        destinations = uniform_destinations(network, source, num_destinations, rng)
        specs.append(
            MessageSpec(
                source=source,
                destinations=tuple(destinations),
                at_ns=index * spacing,
                metadata={"sample": index},
            )
        )
    return Workload(
        name=f"single-multicast-d{num_destinations}",
        specs=specs,
        seed=seed,
        parameters={
            "num_destinations": num_destinations,
            "samples": samples,
            "spacing_ns": spacing,
        },
    )


def mixed_traffic_workload(
    network: Network,
    rate_per_us: float,
    multicast_destinations: int,
    num_messages: int,
    multicast_fraction: float = 0.1,
    seed: int = 0,
    arrival_process: ArrivalProcess | None = None,
) -> Workload:
    """Mixed unicast/multicast traffic (Figure 3's workload).

    Every processor generates messages with negative-binomial inter-arrival
    times at ``rate_per_us`` messages per microsecond.  Each message is a
    unicast with probability ``1 - multicast_fraction`` (the paper uses 90 %)
    and a multicast to ``multicast_destinations`` uniformly random
    destinations otherwise.  Generation stops once ``num_messages`` messages
    have been produced network-wide (the messages are then sorted by arrival
    time).

    Parameters
    ----------
    network:
        Network the workload is for.
    rate_per_us:
        Per-processor average arrival rate (the x-axis of Figure 3).
    multicast_destinations:
        Number of destinations of each multicast (8/16/32/64 in the paper).
    num_messages:
        Total number of messages to generate.
    multicast_fraction:
        Fraction of messages that are multicasts (paper: 0.1).
    seed:
        Workload seed.
    arrival_process:
        Override the arrival process (defaults to the paper's negative
        binomial at ``rate_per_us``).
    """
    if not 0.0 <= multicast_fraction <= 1.0:
        raise WorkloadError("multicast fraction must be within [0, 1]")
    if num_messages < 1:
        raise WorkloadError("need at least one message")
    rng = np.random.default_rng(seed)
    process = arrival_process or NegativeBinomialArrivals(rate_per_us)
    processors = network.processors()
    if len(processors) <= multicast_destinations:
        raise WorkloadError(
            "multicast degree must be smaller than the number of processors"
        )

    # Per-processor arrival clocks; interleave by always advancing the
    # processor whose next arrival is earliest.
    next_arrival: dict[int, int] = {}
    for processor in processors:
        next_arrival[processor] = process.next_interarrival_ns(rng)

    specs: list[MessageSpec] = []
    while len(specs) < num_messages:
        source = min(next_arrival, key=lambda p: (next_arrival[p], p))
        at_ns = next_arrival[source]
        next_arrival[source] = at_ns + process.next_interarrival_ns(rng)
        if rng.random() < multicast_fraction:
            destinations = uniform_destinations(network, source, multicast_destinations, rng)
        else:
            destinations = uniform_destinations(network, source, 1, rng)
        specs.append(
            MessageSpec(
                source=source,
                destinations=tuple(destinations),
                at_ns=at_ns,
                metadata={"index": len(specs)},
            )
        )
    specs.sort(key=lambda spec: spec.at_ns)
    return Workload(
        name=f"mixed-rate{rate_per_us}-d{multicast_destinations}",
        specs=specs,
        seed=seed,
        parameters={
            "rate_per_us": rate_per_us,
            "multicast_destinations": multicast_destinations,
            "num_messages": num_messages,
            "multicast_fraction": multicast_fraction,
            "arrival_process": type(process).__name__,
        },
    )
