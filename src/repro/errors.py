"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while still being able to distinguish configuration problems from run-time
simulation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class TopologyError(ReproError):
    """Raised when a network topology is malformed or violates model rules.

    Examples include exceeding a switch's port count, connecting two
    processors directly, or querying a channel that does not exist.
    """


class ConnectivityError(TopologyError):
    """Raised when an operation requires a connected network but the network
    (or the relevant sub-network) is disconnected."""


class SpanningTreeError(ReproError):
    """Raised when a spanning tree is inconsistent with its network.

    For instance, when a parent map references an edge that does not exist,
    or when the tree does not span every vertex of the network.
    """


class RoutingError(ReproError):
    """Raised when a routing function cannot produce a legal output channel.

    A correct SPAM configuration never raises this for reachable
    destinations; seeing it indicates either a disconnected topology or an
    internal inconsistency between the labelling and the routing function.
    """


class SelectionError(ReproError):
    """Raised when a selection function is asked to choose from an empty
    candidate set."""


class SimulationError(ReproError):
    """Base class for errors raised by the flit-level simulator."""


class DeadlockError(SimulationError):
    """Raised (or recorded) when the simulator detects a deadlock.

    A deadlock is detected either when the event queue drains while messages
    are still undelivered, or when the wait-for graph between in-flight
    messages contains a cycle.
    """


class LivelockError(SimulationError):
    """Raised when a worm exceeds the maximum permitted number of hops,
    indicating that the routing function is not making progress."""


class ConfigurationError(ReproError):
    """Raised when a simulation or experiment configuration is invalid."""


class WorkloadError(ReproError):
    """Raised when a traffic workload specification is invalid, e.g. a
    multicast with zero destinations or a destination equal to the source."""


class SweepError(ReproError):
    """Raised by the sweep orchestration layer (:mod:`repro.sweeps`) for
    store corruption, malformed specs and orchestration failures."""


class ZeroDeliveryError(SweepError):
    """Raised when a sweep point completes without delivering any message.

    A point with no latency observations would otherwise silently propagate
    as a NaN mean into figure series; the orchestrator surfaces it as an
    explicit error instead."""


class VerificationError(ReproError):
    """Raised by the verification utilities when a claimed property
    (deadlock freedom, reachability) is found to be violated."""
