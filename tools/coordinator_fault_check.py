#!/usr/bin/env python
"""Fault-injection differential for the sweep coordinator (CI smoke job).

Runs the smoke-scale Figure-3 universe twice: once through single-host
:func:`repro.sweeps.run_sweep` (the golden), then through a real
coordinator fleet — one ``repro-spam sweep serve`` process plus two
``sweep work`` processes, one of which misbehaves per scenario — and
asserts the acceptance guarantee of the fleet layer:

    whatever the workers do, the coordinator's merged store converges to
    the full universe and its figure export is **byte-identical** to the
    single-host run.

Scenarios (one faulty worker + one healthy worker each):

``none``
    Baseline: two healthy workers split the sweep.
``stall``
    The faulty worker acquires a lease and hangs; the harness SIGKILLs it
    mid-lease.  The coordinator must expire the lease and re-queue its
    points for the healthy worker.
``die-before-submit``
    The faulty worker evaluates its lease fully, then exits without
    submitting — indistinguishable from a crash.
``partial-submit``
    The faulty worker submits only half its lease's rows; the remainder
    must be re-queued immediately (no deadline wait).
``foreign-salt``
    The faulty worker submits every row under a wrong code salt; all rows
    must be rejected and the points stay owed.
``duplicate-submit``
    The faulty worker submits the same rows twice; the retry must be
    absorbed idempotently.

Every scenario also drives the coordinator's front end the way an operator
would: ``repro-spam sweep status --url ...`` must report completion before
the harness shuts the service down.

Usage::

    PYTHONPATH=src python tools/coordinator_fault_check.py \
        [--scenario NAME | --scenario all] [--lease-ttl S]

Exits nonzero (AssertionError) on any violated guarantee.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import SCALES  # noqa: E402
from repro.experiments.figure3 import (  # noqa: E402
    Figure3Config,
    figure3_result_from_points,
    figure3_specs,
)
from repro.sweeps import ResultStore, WorkerClient, run_sweep  # noqa: E402

SCENARIOS = (
    "none",
    "stall",
    "die-before-submit",
    "partial-submit",
    "foreign-salt",
    "duplicate-submit",
)

#: The smoke universe every scenario runs (must match the serve arguments
#: in :func:`launch_serve` — 4 points at smoke scale).
FLEET_CONFIG = Figure3Config(
    network_size=32,
    multicast_degrees=(4, 8),
    arrival_rates_per_us=(0.005, 0.02),
    scale=SCALES["smoke"],
)

_SERVE_ARGS = [
    "--universe", "figure3",
    "--network-size", "32",
    "--degrees", "4", "8",
    "--rates", "0.005", "0.02",
]

_URL_PATTERN = re.compile(r"listening on (http://\S+)")


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env["PYTHONUNBUFFERED"] = "1"
    return env


def export_bytes(outcome) -> bytes:
    """Figure-3 export bytes, matching ``repro-spam sweep --export``."""
    figure = figure3_result_from_points(FLEET_CONFIG, outcome.results)
    return (json.dumps(figure.as_dict(), indent=2, sort_keys=True) + "\n").encode()


def golden_export(tmp: Path) -> bytes:
    """Single-host ``run_sweep`` of the universe into a throwaway store."""
    specs = figure3_specs(FLEET_CONFIG)
    outcome = run_sweep(specs, store=ResultStore(tmp / "golden-store"))
    assert outcome.computed == len(specs), outcome.summary()
    return export_bytes(outcome)


def launch_serve(store_dir: Path, lease_ttl: float, lease_points: int = 2):
    """Start ``sweep serve`` on a free port; returns ``(process, url)``."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "--scale", "smoke", "sweep", "serve",
         *_SERVE_ARGS,
         "--cache-dir", str(store_dir),
         "--lease-ttl", str(lease_ttl),
         "--lease-points", str(lease_points),
         "--port", "0",
         "--no-exit-when-complete"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_child_env(),
    )
    url = None
    assert process.stdout is not None
    for line in process.stdout:
        print(f"  [serve] {line}", end="")
        match = _URL_PATTERN.search(line)
        if match:
            url = match.group(1)
            break
    assert url, "sweep serve never announced its URL"
    return process, url


def launch_worker(url: str, worker_id: str, fault: str = "none") -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "sweep", "work",
         "--url", url, "--worker-id", worker_id,
         "--poll-interval", "0.25", "--fault", fault],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_child_env(),
    )


def wait_for_line(process: subprocess.Popen, needle: str, label: str) -> None:
    """Stream a worker's stdout until ``needle`` appears."""
    assert process.stdout is not None
    for line in process.stdout:
        print(f"  [{label}] {line}", end="")
        if needle in line:
            return
    raise AssertionError(f"{label} exited without printing {needle!r}")


def drain(process: subprocess.Popen, label: str, timeout: float = 120.0) -> int:
    try:
        output, _ = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        raise AssertionError(f"{label} did not exit within {timeout:.0f}s")
    for line in (output or "").splitlines():
        print(f"  [{label}] {line}")
    return process.returncode


def assert_status_complete(url: str) -> None:
    """``repro-spam sweep status`` against the live coordinator must report
    completion — the operator-facing view of convergence."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "sweep", "status", "--url", url],
        capture_output=True, text=True, env=_child_env(), timeout=60,
    )
    print(f"  [status] {result.stdout.splitlines()[0] if result.stdout else result.stderr}")
    assert result.returncode == 0, result.stderr
    assert ", complete" in result.stdout.splitlines()[0], result.stdout


def verify_store(store_dir: Path, golden: bytes) -> None:
    """The merged store must be complete and serve the sweep warm: zero
    points computed, export byte-identical to the single-host golden."""
    status = ResultStore(store_dir).manifest_status()
    assert status is not None and status.complete, status
    specs = figure3_specs(FLEET_CONFIG)
    warm = run_sweep(specs, store=ResultStore(store_dir))
    assert warm.computed == 0 and warm.cache_hits == len(specs), warm.summary()
    assert export_bytes(warm) == golden, (
        "fleet-merged store's export differs from the single-host golden"
    )
    journal = store_dir / "coordinator.journal"
    assert journal.exists() and journal.read_bytes().strip(), "journal missing/empty"


def run_scenario(scenario: str, tmp: Path, golden: bytes, lease_ttl: float) -> None:
    assert scenario in SCENARIOS, scenario
    print(f"scenario {scenario}:")
    store_dir = tmp / f"store-{scenario}"
    serve, url = launch_serve(store_dir, lease_ttl)
    try:
        faulty = launch_worker(url, "faulty", fault=scenario)
        if scenario == "stall":
            # Let it acquire a lease and hang, then kill it mid-lease: the
            # coordinator sees only silence and must expire the lease.
            wait_for_line(faulty, "stalling", "faulty")
            os.kill(faulty.pid, signal.SIGKILL)
            faulty.wait(timeout=30)
            print("  [harness] faulty worker SIGKILLed mid-lease")
        else:
            # The fault only fires on the faulty worker's first lease — make
            # sure it holds one before the healthy worker joins the race.
            wait_for_line(faulty, "acquired", "faulty")
        healthy = launch_worker(url, "healthy")
        if scenario != "stall":
            faulty_code = drain(faulty, "faulty")
            # A scripted fault is not a worker error: the process exits 0
            # (the coordinator is the component under test, not the worker).
            assert faulty_code == 0, f"faulty worker exited {faulty_code}"
        healthy_code = drain(healthy, "healthy")
        assert healthy_code == 0, f"healthy worker exited {healthy_code}"
        assert_status_complete(url)
        WorkerClient(url).shutdown()
        serve_code = drain(serve, "serve", timeout=30)
        assert serve_code == 0, f"sweep serve exited {serve_code}"
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.wait()
    verify_store(store_dir, golden)
    print(f"scenario {scenario}: PASSED")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="all",
                        choices=("all",) + SCENARIOS,
                        help="fault scenario to run (default: all of them)")
    parser.add_argument("--lease-ttl", type=float, default=4.0,
                        help="coordinator lease TTL in seconds (short, so "
                             "crash scenarios expire quickly)")
    args = parser.parse_args()
    scenarios = SCENARIOS if args.scenario == "all" else (args.scenario,)

    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        golden = golden_export(tmp)
        print(f"golden export: {len(golden)} bytes from single-host run_sweep")
        for scenario in scenarios:
            run_scenario(scenario, tmp, golden, args.lease_ttl)

    print(f"coordinator fault check PASSED ({len(scenarios)} scenario(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
