"""``python -m tools.repro_lint`` entry point."""

import sys

from .cli import main

sys.exit(main())
