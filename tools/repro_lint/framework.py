"""The ``repro-lint`` framework: findings, pragmas, baseline, rule registry.

``repro-lint`` is an AST-based static analyzer enforcing the repository's
*determinism contract*: every simulation, sweep and export must be
bit-identical run to run, host to host (``docs/determinism.md``).  The
dynamic half of that contract is the equivalence test suite; this framework
is the static half — it proves properties of the program text (no
salted-hash ordering, no set-iteration in result paths, no global RNG
state, ...) instead of sampling executions.

Architecture
------------
* A :class:`Rule` inspects a :class:`Project` (parsed source files plus the
  repository's documentation) and yields :class:`Finding` objects.  Rules
  self-register via :func:`register`; :data:`all_rules` returns them in
  rule-id order so output is deterministic.
* :class:`FileRule` is the common case: a per-file rule restricted to a
  tuple of ``scope`` glob patterns (repository-relative posix paths).
* **Pragmas** suppress a finding at an intentionally order-insensitive
  site::

      x = min(ids)  # repro-lint: disable=R1 -- min over ints is order-independent

  The justification after ``--`` is mandatory; a pragma without one is
  itself reported (rule ``R0``).  A pragma on a line of its own applies to
  the next source line.
* **Baseline**: a checked-in JSON list of finding fingerprints that are
  tolerated (grandfathered).  The repository policy is an *empty* baseline
  — fix or pragma, don't baseline — but the mechanism exists so the linter
  can be adopted mid-flight by downstream forks.  Fingerprints hash the
  rule id, the file path and the source line *text* (not the line number),
  so unrelated edits above a baselined site do not un-baseline it.

Exit codes (:func:`tools.repro_lint.cli.main`): 0 clean, 1 findings,
2 usage/internal error — deterministic, CI-friendly.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Project",
    "Rule",
    "FileRule",
    "LintResult",
    "register",
    "all_rules",
    "run_lint",
    "load_baseline",
    "write_baseline",
    "DEFAULT_PATHS",
    "DEFAULT_BASELINE",
]

#: Paths scanned when the CLI is given none (repository-relative).
DEFAULT_PATHS = ("src", "tools", "benchmarks")

#: Default baseline location (repository-relative).
DEFAULT_BASELINE = "tools/repro_lint/baseline.json"

#: ``# repro-lint: disable=R1,R4 -- justification``
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9,\s]+?)"
    r"(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One determinism-contract violation at one source location."""

    path: str  #: repository-relative posix path
    line: int  #: 1-based
    col: int  #: 0-based (ast convention)
    rule: str  #: e.g. ``"R1"``
    message: str
    severity: str = "error"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class FileContext:
    """One parsed python source file."""

    relpath: str  #: posix path relative to the project root
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def line_text(self, lineno: int) -> str:
        """Source text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Project:
    """Everything a rule may inspect: parsed sources plus documentation.

    ``files`` holds every successfully parsed python file under the scanned
    paths, in sorted relpath order (determinism).  Documentation is read
    lazily through :meth:`read_text` so project-level rules (counter/knob
    doc coverage) can diff code against ``README.md`` / ``docs/*.md``.
    """

    def __init__(self, root: Path, files: Sequence[FileContext]):
        self.root = Path(root)
        self.files = sorted(files, key=lambda ctx: ctx.relpath)
        self._by_path = {ctx.relpath: ctx for ctx in self.files}

    def file(self, relpath: str) -> FileContext | None:
        """The parsed file at ``relpath``, or ``None`` when not scanned."""
        return self._by_path.get(relpath)

    def read_text(self, relpath: str) -> str | None:
        """Raw text of any repository file (``None`` when absent)."""
        path = self.root / relpath
        try:
            return path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None


class Rule:
    """Base class: one named, registered determinism check."""

    rule_id: str = ""
    name: str = ""
    #: One-line rationale, shown by ``--list-rules`` and in docs.
    description: str = ""
    severity: str = "error"

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, relpath: str, node_or_line: ast.AST | int, message: str, col: int | None = None
    ) -> Finding:
        if isinstance(node_or_line, int):
            line, column = node_or_line, 0 if col is None else col
        else:
            line = getattr(node_or_line, "lineno", 1)
            column = getattr(node_or_line, "col_offset", 0) if col is None else col
        return Finding(
            path=relpath,
            line=line,
            col=column,
            rule=self.rule_id,
            message=f"[{self.name}] {message}",
            severity=self.severity,
        )


class FileRule(Rule):
    """A rule that inspects files matching its ``scope`` glob patterns."""

    #: Repository-relative posix glob patterns (``fnmatch`` on the full
    #: relpath); empty means "every scanned file".
    scope: tuple[str, ...] = ()
    #: Glob patterns carved *out* of the scope — a rule-scoped sanction
    #: (e.g. R4 excludes ``src/repro/obs/*``: the telemetry package owns
    #: the monotonic clock and the runtime-knob reader, and rule R9's
    #: firewall bounds what can flow out of it).  Prefer an exclusion with
    #: a documented contract over per-site pragmas when a whole package is
    #: exempt by design.
    exclude: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if any(fnmatch.fnmatch(relpath, pattern) for pattern in self.exclude):
            return False
        if not self.scope:
            return True
        return any(fnmatch.fnmatch(relpath, pattern) for pattern in self.scope)

    def check(self, project: Project) -> Iterator[Finding]:
        for ctx in project.files:
            if self.applies_to(ctx.relpath):
                yield from self.check_file(ctx, project)

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


#: Registry, populated by the :mod:`tools.repro_lint.rules` package.
_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (keyed by rule id)."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> list[Rule]:
    """Every registered rule, in rule-id order (import triggers registration)."""
    from . import rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Pragma suppression
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Pragma:
    line: int  #: line the pragma applies to (its own, or the next for bare lines)
    rules: tuple[str, ...]
    reason: str | None
    declared_line: int  #: line the comment physically sits on


def _parse_pragmas(ctx: FileContext) -> list[Pragma]:
    pragmas: list[Pragma] = []
    for lineno, text in enumerate(ctx.lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip().upper() for part in match.group("rules").split(",") if part.strip()
        )
        reason = match.group("reason")
        applies_to = lineno
        if text.lstrip().startswith("#"):
            # A pragma on a line of its own governs the next line.
            applies_to = lineno + 1
        pragmas.append(
            Pragma(line=applies_to, rules=rules, reason=reason, declared_line=lineno)
        )
    return pragmas


def _apply_pragmas(
    ctx: FileContext, findings: list[Finding]
) -> tuple[list[Finding], list[Finding], int]:
    """Split ``findings`` into (kept, pragma-discipline findings, suppressed count)."""
    pragmas = _parse_pragmas(ctx)
    discipline: list[Finding] = []
    by_line: dict[int, list[Pragma]] = {}
    for pragma in pragmas:
        if not pragma.reason:
            discipline.append(
                Finding(
                    path=ctx.relpath,
                    line=pragma.declared_line,
                    col=0,
                    rule="R0",
                    message=(
                        "[pragma-discipline] suppression pragma has no justification; "
                        "write '# repro-lint: disable=<rules> -- <why this site is safe>'"
                    ),
                )
            )
            continue  # an unjustified pragma suppresses nothing
        by_line.setdefault(pragma.line, []).append(pragma)

    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        covering = by_line.get(finding.line, ())
        if any(finding.rule in pragma.rules for pragma in covering):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, discipline, suppressed


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _fingerprint(finding: Finding, line_text: str) -> str:
    """Stable identity of a finding: rule, file, and the *text* of the line
    (line numbers shift when unrelated code moves; text does not)."""
    return f"{finding.rule}:{finding.path}:{line_text.strip()}"


def load_baseline(path: Path) -> list[str]:
    """Fingerprints grandfathered by the baseline file (missing file = none)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return []
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    entries = payload.get("findings") if isinstance(payload, dict) else None
    if not isinstance(entries, list):
        raise ValueError(
            f"baseline {path} must look like {{\"findings\": [<fingerprint>, ...]}}"
        )
    return [str(entry) for entry in entries]


def write_baseline(path: Path, result: "LintResult") -> None:
    """Persist the current findings as the new baseline (sorted, stable)."""
    payload = {
        "comment": (
            "Grandfathered repro-lint findings. Repository policy is to keep "
            "this EMPTY: fix the hazard or add a justified inline pragma. "
            "Regenerate with --write-baseline."
        ),
        "findings": sorted(result.fingerprints),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """What a lint run produced, pre-sorted for deterministic output."""

    findings: list[Finding]
    fingerprints: list[str]  #: aligned with ``findings``
    files_scanned: int
    suppressed: int  #: findings silenced by justified pragmas
    baselined: int  #: findings silenced by the baseline file

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def summary(self) -> str:
        status = "FAIL" if self.findings else "ok"
        return (
            f"repro-lint: {len(self.findings)} finding(s) across "
            f"{self.files_scanned} file(s) "
            f"({self.suppressed} pragma-suppressed, {self.baselined} baselined): {status}"
        )


def _discover(root: Path, paths: Sequence[str]) -> list[Path]:
    """Python files under ``paths`` (files or directories), sorted."""
    found: set[Path] = set()
    for raw in paths:
        path = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if path.is_file() and path.suffix == ".py":
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if any(part.startswith(".") or part == "__pycache__" for part in candidate.parts):
                    continue
                found.add(candidate)
    return sorted(found)


def run_lint(
    root: Path,
    paths: Sequence[str] = DEFAULT_PATHS,
    select: Iterable[str] | None = None,
    disable: Iterable[str] = (),
    baseline: Path | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintResult:
    """Run the analyzer and return a :class:`LintResult`.

    Parameters
    ----------
    root:
        Repository root; every reported path and every scope pattern is
        relative to it.
    paths:
        Files or directories (relative to ``root``) to scan.
    select / disable:
        Restrict to / drop the given rule ids (``select`` wins first).
    baseline:
        Baseline file; ``None`` uses :data:`DEFAULT_BASELINE` under
        ``root`` when present.
    rules:
        Explicit rule instances (tests); defaults to the full registry.
    """
    root = Path(root).resolve()
    active = list(all_rules()) if rules is None else list(rules)
    if select is not None:
        wanted = {rule_id.upper() for rule_id in select}
        unknown = wanted - {rule.rule_id for rule in active}
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
        active = [rule for rule in active if rule.rule_id in wanted]
    dropped = {rule_id.upper() for rule_id in disable}
    active = [rule for rule in active if rule.rule_id not in dropped]

    contexts: list[FileContext] = []
    parse_failures: list[Finding] = []
    for path in _discover(root, paths):
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=relpath)
        except (OSError, UnicodeDecodeError, SyntaxError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            parse_failures.append(
                Finding(
                    path=relpath,
                    line=int(lineno),
                    col=0,
                    rule="E0",
                    message=f"[unparseable] cannot analyze file: {exc}",
                )
            )
            continue
        contexts.append(
            FileContext(relpath=relpath, text=text, tree=tree, lines=text.splitlines())
        )

    project = Project(root, contexts)
    raw: dict[str, list[Finding]] = {ctx.relpath: [] for ctx in contexts}
    for rule in active:
        for finding in rule.check(project):
            raw.setdefault(finding.path, []).append(finding)

    kept: list[Finding] = list(parse_failures)
    suppressed_total = 0
    for ctx in contexts:
        file_findings = sorted(raw.get(ctx.relpath, []))
        file_kept, discipline, suppressed = _apply_pragmas(ctx, file_findings)
        kept.extend(file_kept)
        kept.extend(discipline)
        suppressed_total += suppressed
    # Findings attributed to files outside the scan set (e.g. a doc-coverage
    # rule blaming a missing markdown heading) bypass pragma handling.
    for relpath, file_findings in raw.items():
        if project.file(relpath) is None:
            kept.extend(file_findings)

    kept.sort()
    baseline_path = baseline if baseline is not None else root / DEFAULT_BASELINE
    grandfathered = load_baseline(baseline_path)
    budget: dict[str, int] = {}
    for entry in grandfathered:
        budget[entry] = budget.get(entry, 0) + 1

    final: list[Finding] = []
    fingerprints: list[str] = []
    baselined = 0
    for finding in kept:
        ctx = project.file(finding.path)
        line_text = ctx.line_text(finding.line) if ctx is not None else ""
        fingerprint = _fingerprint(finding, line_text)
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            baselined += 1
            continue
        final.append(finding)
        fingerprints.append(fingerprint)

    return LintResult(
        findings=final,
        fingerprints=fingerprints,
        files_scanned=len(contexts),
        suppressed=suppressed_total,
        baselined=baselined,
    )
