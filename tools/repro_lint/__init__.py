"""``repro-lint``: the repository's determinism & invariant static analyzer.

Usage (from a checkout, no install needed)::

    python -m tools.repro_lint src/ tools/ benchmarks/
    python -m tools.repro_lint --json          # machine-readable findings
    python -m tools.repro_lint --list-rules    # rule ids + rationale

Library entry points: :func:`run_lint` (programmatic runs; the CI shim
``tools/check_counter_docs.py`` and the test-suite use it) and
:func:`all_rules`.  The contract the rules enforce is documented in
``docs/determinism.md``; the framework lives in
:mod:`tools.repro_lint.framework`.
"""

from .framework import (
    DEFAULT_BASELINE,
    DEFAULT_PATHS,
    FileContext,
    FileRule,
    Finding,
    LintResult,
    Project,
    Rule,
    all_rules,
    load_baseline,
    run_lint,
    write_baseline,
)

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_PATHS",
    "FileContext",
    "FileRule",
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "all_rules",
    "load_baseline",
    "run_lint",
    "write_baseline",
]
