"""Command-line front end for ``repro-lint``.

Deterministic by construction: findings are sorted (path, line, col, rule),
JSON output is stable, and the exit code is a pure function of the findings
— 0 clean, 1 findings, 2 usage/internal error — so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .framework import (
    DEFAULT_BASELINE,
    DEFAULT_PATHS,
    all_rules,
    run_lint,
    write_baseline,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=(
            "AST-based determinism & invariant analyzer for this repository "
            "(rules and policy: docs/determinism.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root (default: auto-detected from this file's location)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (e.g. R1,R4)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} under the root)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule registry and exit"
    )
    return parser


def _split(raw: str | None) -> list[str]:
    if not raw:
        return []
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0

    root = (
        Path(args.root).resolve()
        if args.root is not None
        else Path(__file__).resolve().parent.parent.parent
    )
    baseline = Path(args.baseline).resolve() if args.baseline else None
    try:
        result = run_lint(
            root=root,
            paths=args.paths,
            select=_split(args.select) or None,
            disable=_split(args.disable),
            baseline=baseline,
        )
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline if baseline is not None else root / DEFAULT_BASELINE
        write_baseline(target, result)
        print(
            f"repro-lint: wrote {len(result.fingerprints)} fingerprint(s) to {target}"
        )
        return 0

    if args.json:
        payload = {
            "findings": [finding.as_dict() for finding in result.findings],
            "files_scanned": result.files_scanned,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render(), file=sys.stderr)
        print(result.summary())
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
