"""R9: the observables firewall around ``repro.obs``.

The telemetry package is the one place in the library allowed to read the
wall clock and the process environment (R4 carries a rule-scoped exclusion
for ``src/repro/obs/*``).  That sanction is only sound if nothing recorded
there can flow back into simulation or sweep *observables* — the stats,
traces and store rows whose bytes the determinism contract fingerprints.
R9 enforces that boundary statically, from both sides:

1. **Sink modules stay obs-free.**  The modules that define observable
   result types (``simulator/stats.py``, ``trace.py``, ``message.py``,
   ``flit.py``; ``sweeps/store.py``, ``sweeps/spec.py``) may not import
   ``repro.obs`` at all — neither ``from ..obs import …`` nor the absolute
   form.  Code that *orchestrates* (engine, regions, scheduler) may hold a
   recorder, but the modules whose values are fingerprinted cannot even
   name one.

2. **Telemetry values stay out of sink constructors.**  Anywhere in the
   library outside ``repro.obs``, an argument whose name looks like
   telemetry state (``telemetry``, ``span``/``spans``, ``gauge``/
   ``gauges``, ``obs``/``tele`` prefixes and suffixes) must not appear in
   a call that builds or feeds an observable — ``TraceEvent(...)``,
   ``SweepPointResult(...)``, ``record_message(...)``,
   ``observable_fingerprint(...)``, ``store.put(...)`` and friends.  This
   is a heuristic tripwire, not a full dataflow analysis: it catches the
   obvious "smuggle a duration into a result row" mistake at the call
   site where it happens.

3. **``repro.obs`` is a leaf.**  Files under ``src/repro/obs/*`` may
   import only the standard library and each other.  The firewall is a
   one-way valve: the library pushes marks *into* obs, and nothing from
   the rest of ``repro`` (configs, stats, specs) is reachable from inside
   it, so obs code cannot mutate observables even in principle.

Genuinely needing to cross the firewall (say, persisting a telemetry
snapshot *next to* a store) is a design change: write the exporter in
``repro.obs.export`` against the snapshot schema instead.
"""

from __future__ import annotations

import ast
import re
import sys
from typing import Iterator

from ..framework import FileContext, FileRule, Finding, Project, register

#: Modules that define observable result types; importing ``repro.obs``
#: here is banned outright (check 1).
_SINK_MODULES = {
    "src/repro/simulator/stats.py",
    "src/repro/simulator/trace.py",
    "src/repro/simulator/message.py",
    "src/repro/simulator/flit.py",
    "src/repro/sweeps/store.py",
    "src/repro/sweeps/spec.py",
}

#: Callables that build or feed observable results (check 2).  Matched by
#: the terminal name of the call target, so both ``TraceEvent(...)`` and
#: ``module.TraceEvent(...)``, ``store.put(...)`` and ``self.store.put(...)``
#: resolve here.
_SINK_CALLS = {
    "TraceEvent",
    "MessageRecord",
    "ChannelRecord",
    "SweepPointResult",
    "record_message",
    "record_delivery",
    "trace_event",
    "record",
    "observable_fingerprint",
    "put",
}

#: Identifier shapes that mark a value as telemetry-derived.  Anchored so
#: that legitimate simulator vocabulary (``spanning_tree``, ``spanning``)
#: does not trip the wire: ``span`` must be the whole first component or a
#: whole ``_``-delimited suffix.
_TELEMETRY_NAME_PATTERNS = (
    re.compile(r"^(telemetry|tele|obs|span|spans|gauge|gauges)$"),
    re.compile(r"^(telemetry|obs|span|tel)_"),
    re.compile(r"_(telemetry|span|spans)$"),
)

_STDLIB_MODULES = frozenset(sys.stdlib_module_names)


def _is_telemetry_name(name: str) -> bool:
    return any(pattern.search(name) for pattern in _TELEMETRY_NAME_PATTERNS)


def _call_target_name(func: ast.expr) -> str | None:
    """Terminal identifier of a call target (``a.b.put`` -> ``put``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _telemetry_idents(node: ast.expr) -> Iterator[str]:
    """Telemetry-shaped identifiers appearing anywhere in an expression."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _is_telemetry_name(sub.id):
            yield sub.id
        elif isinstance(sub, ast.Attribute) and _is_telemetry_name(sub.attr):
            yield sub.attr


def _imports_obs(node: ast.stmt) -> bool:
    """True if the import statement reaches ``repro.obs`` from anywhere."""
    if isinstance(node, ast.Import):
        return any(
            alias.name == "repro.obs" or alias.name.startswith("repro.obs.")
            for alias in node.names
        )
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if node.level >= 1:
            # Relative: ``from ..obs import …`` / ``from ..obs.export import …``
            # (any level — sink modules all live one or two packages deep).
            return module == "obs" or module.startswith("obs.")
        return module == "repro.obs" or module.startswith("repro.obs.")
    return False


@register
class ObservablesFirewallRule(FileRule):
    """R9: nothing from ``repro.obs`` flows into fingerprinted observables."""

    rule_id = "R9"
    name = "observables-firewall"
    description = (
        "repro.obs may read the wall clock (R4 sanction); in exchange its "
        "values must never reach stats/trace/store observables — sink "
        "modules cannot import obs, telemetry-shaped values cannot feed "
        "sink constructors, and obs itself imports only the stdlib"
    )
    scope = ("src/repro/*",)

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if ctx.relpath.startswith("src/repro/obs/"):
            yield from self._check_obs_leaf(ctx)
            return
        yield from self._check_sink_imports(ctx)
        yield from self._check_tainted_sink_calls(ctx)

    # -- check 1: sink modules stay obs-free ------------------------------
    def _check_sink_imports(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.relpath not in _SINK_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)) and _imports_obs(node):
                yield self.finding(
                    ctx.relpath,
                    node,
                    "observable sink module imports repro.obs: modules defining "
                    "fingerprinted result types must not name telemetry at all; "
                    "thread recorders through orchestration layers instead",
                )

    # -- check 2: telemetry values stay out of sink calls ------------------
    def _check_tainted_sink_calls(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target_name(node.func)
            if target not in _SINK_CALLS:
                continue
            tainted: list[str] = []
            for arg in node.args:
                tainted.extend(_telemetry_idents(arg))
            for keyword in node.keywords:
                if keyword.arg is not None and _is_telemetry_name(keyword.arg):
                    tainted.append(keyword.arg)
                tainted.extend(_telemetry_idents(keyword.value))
            if tainted:
                unique = sorted(set(tainted))
                yield self.finding(
                    ctx.relpath,
                    node,
                    f"telemetry-shaped value(s) {', '.join(unique)} passed to "
                    f"observable sink {target}(): wall-clock-derived data must "
                    f"never reach fingerprinted results; export it via "
                    f"repro.obs.export instead",
                )

    # -- check 3: repro.obs is a leaf --------------------------------------
    def _check_obs_leaf(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root not in _STDLIB_MODULES:
                        yield self.finding(
                            ctx.relpath,
                            node,
                            f"repro.obs imports non-stdlib module {alias.name!r}: "
                            f"the telemetry package must stay a leaf (stdlib and "
                            f"intra-obs imports only) so it cannot reach "
                            f"observables",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level >= 2 or (node.level == 0 and module.split(".", 1)[0] == "repro"):
                    yield self.finding(
                        ctx.relpath,
                        node,
                        "repro.obs imports from the wider repro package: the "
                        "telemetry package must stay a leaf (stdlib and "
                        "intra-obs imports only) so it cannot reach observables",
                    )
                elif node.level == 0 and module.split(".", 1)[0] not in _STDLIB_MODULES:
                    yield self.finding(
                        ctx.relpath,
                        node,
                        f"repro.obs imports non-stdlib module {module!r}: the "
                        f"telemetry package must stay a leaf (stdlib and "
                        f"intra-obs imports only) so it cannot reach observables",
                    )
