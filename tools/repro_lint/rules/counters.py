"""R6: counter discipline — initialize-before-increment, and doc coverage.

Two related contracts on the engine's observability counters
(``docs/engine_counters.md`` is normative):

* **Initialization**: every ``self.x += ...`` in a simulator class must
  have ``x`` initialized in ``__init__`` (or a ``reset*``/``clear*``
  method, or as a dataclass field).  An increment to an attribute that is
  only *sometimes* created raises ``AttributeError`` on some code paths —
  and, worse for observability, silently starts from a stale value after a
  partial reset.
* **Documentation**: every public ``coalesce*`` counter the engine assigns
  must have a ``### `name` `` heading in ``docs/engine_counters.md``, and
  every documented heading must still exist in the engine.  This is the
  AST-based generalization of the old textual ``tools/check_counter_docs.py``
  (now a thin shim over this rule).  The same coverage contract applies to
  the region-parallel executor's ``region_*`` counters — the dataclass
  fields of ``RegionRunResult`` in ``src/repro/simulator/regions.py`` —
  which share the reference document.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..framework import FileContext, FileRule, Finding, Project, register

_ENGINE = "src/repro/simulator/engine.py"
_REGIONS = "src/repro/simulator/regions.py"
_REFERENCE = "docs/engine_counters.md"
_HEADING = re.compile(r"^###\s+`(coalesce\w*)`", re.MULTILINE)
_REGION_HEADING = re.compile(r"^###\s+`(region_\w*)`", re.MULTILINE)

_INIT_METHODS = re.compile(r"^(__init__|reset\w*|clear\w*|_reset\w*)$")


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _initialized_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes a class is guaranteed to create before normal operation."""
    initialized: set[str] = set()
    for stmt in cls.body:
        # Dataclass fields / class-level defaults.
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            initialized.add(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    initialized.add(target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _INIT_METHODS.match(stmt.name):
                continue
            for node in ast.walk(stmt):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Tuple):
                        for element in target.elts:
                            attr = _self_attr(element)
                            if attr:
                                initialized.add(attr)
                    else:
                        attr = _self_attr(target)
                        if attr:
                            initialized.add(attr)
    return initialized


def _public_counter_assigns(cls: ast.ClassDef) -> dict[str, int]:
    """``coalesce*`` attributes assigned anywhere in the class -> first line."""
    counters: dict[str, int] = {}
    for node in ast.walk(cls):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr and attr.startswith("coalesce") and not attr.startswith("_"):
                counters.setdefault(attr, node.lineno)
    return counters


@register
class CounterDisciplineRule(FileRule):
    """R6: increments need initialization; ``coalesce*`` counters need docs."""

    rule_id = "R6"
    name = "counter-discipline"
    description = (
        "every self.x += … in a simulator class must be initialized in "
        "__init__/reset*, and every public coalesce* engine counter and "
        "region_* region-parallel counter must have a heading in "
        "docs/engine_counters.md (and vice versa)"
    )
    scope = ("src/repro/simulator/*",)

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            initialized = _initialized_attrs(node)
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _INIT_METHODS.match(method.name):
                    continue
                for inner in ast.walk(method):
                    if not isinstance(inner, ast.AugAssign):
                        continue
                    attr = _self_attr(inner.target)
                    if attr is not None and attr not in initialized:
                        yield self.finding(
                            ctx.relpath,
                            inner,
                            f"counter 'self.{attr}' is incremented in "
                            f"{node.name}.{method.name}() but never initialized in "
                            f"__init__/reset; add an explicit zero initialization",
                        )
        if ctx.relpath == _ENGINE:
            yield from self._check_doc_coverage(ctx, project)
        if ctx.relpath == _REGIONS:
            yield from self._check_region_doc_coverage(ctx, project)

    def _check_doc_coverage(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        counters: dict[str, int] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                counters.update(_public_counter_assigns(node))
        reference = project.read_text(_REFERENCE)
        if reference is None:
            yield self.finding(
                ctx.relpath,
                1,
                f"engine counter reference {_REFERENCE} is missing; it is the "
                f"normative documentation for every coalesce* counter",
            )
            return
        documented: dict[str, int] = {}
        for match in _HEADING.finditer(reference):
            documented.setdefault(
                match.group(1), reference.count("\n", 0, match.start()) + 1
            )
        for name in sorted(set(counters) - set(documented)):
            yield self.finding(
                ctx.relpath,
                counters[name],
                f"engine counter '{name}' has no '### `{name}`' heading in "
                f"{_REFERENCE}; document its meaning and increment rule",
            )
        for name in sorted(set(documented) - set(counters)):
            yield Finding(
                path=_REFERENCE,
                line=documented[name],
                col=0,
                rule=self.rule_id,
                message=(
                    f"[{self.name}] documents counter '{name}', which no longer "
                    f"exists in {_ENGINE}; delete or rename the section"
                ),
            )

    def _check_region_doc_coverage(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Finding]:
        """``region_*`` result fields <-> ``docs/engine_counters.md`` headings.

        The region-parallel executor reports its observability counters as
        dataclass fields (``region_count``, ``region_conflict_reruns``, …)
        rather than engine attributes; the doc-coverage contract is the
        same as for ``coalesce*`` and uses the same reference document.
        """
        counters: dict[str, int] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id.startswith("region_")
                ):
                    counters.setdefault(stmt.target.id, stmt.lineno)
        reference = project.read_text(_REFERENCE)
        if reference is None:
            if counters:
                yield self.finding(
                    ctx.relpath,
                    1,
                    f"counter reference {_REFERENCE} is missing; it is the "
                    f"normative documentation for every region_* counter",
                )
            return
        documented: dict[str, int] = {}
        for match in _REGION_HEADING.finditer(reference):
            documented.setdefault(
                match.group(1), reference.count("\n", 0, match.start()) + 1
            )
        for name in sorted(set(counters) - set(documented)):
            yield self.finding(
                ctx.relpath,
                counters[name],
                f"region-parallel counter '{name}' has no '### `{name}`' heading "
                f"in {_REFERENCE}; document its meaning and increment rule",
            )
        for name in sorted(set(documented) - set(counters)):
            yield Finding(
                path=_REFERENCE,
                line=documented[name],
                col=0,
                rule=self.rule_id,
                message=(
                    f"[{self.name}] documents counter '{name}', which no longer "
                    f"exists in {_REGIONS}; delete or rename the section"
                ),
            )
