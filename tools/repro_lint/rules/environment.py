"""R4: wall-clock and environment leaks in result paths.

A simulation's observable results are nanosecond timestamps computed on the
*simulated* clock; a sweep's results are pure functions of specs.  Reading
the wall clock (``time.time``, ``datetime.now``), OS entropy
(``os.urandom``, ``uuid.uuid4``) or the process environment inside the
library makes results depend on when/where they ran — the exact failure
mode the content-addressed store exists to prevent.

Environment reads deserve a note: a handful of sanctioned knobs exist
(``REPRO_SWEEP_WORKERS`` / ``REPRO_REGION_WORKERS`` — parallelism only,
results bit-identical; ``REPRO_SWEEP_CACHE`` — store *location*, not
content; ``REPRO_SCALE`` / ``REPRO_FLITS`` / ``REPRO_SAMPLES`` — explicit
scale selectors for CI).  Worker-count knobs flow through the single
sanctioned reader :func:`repro.obs.runtime.env_knob`; the ``repro.obs``
package as a whole is excluded from this rule (a rule-scoped sanction —
it owns the monotonic telemetry clock too), with rule R9's observables
firewall statically bounding what can flow out of it.  Remaining sites
carry justified pragmas; anything new must either flow through
configuration objects, ``env_knob``, or argue its own pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, FileRule, Finding, Project, register
from .rng import _dotted, _module_aliases

_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "time.process_time": "wall-clock read",
    "os.urandom": "OS entropy read",
    "os.getrandom": "OS entropy read",
    "uuid.uuid1": "host/time-derived identifier",
    "uuid.uuid4": "entropy-derived identifier",
    "secrets.token_bytes": "OS entropy read",
    "secrets.token_hex": "OS entropy read",
    "os.getenv": "environment read",
    "os.environ.get": "environment read",
    "os.environb.get": "environment read",
}

#: ``datetime.now()`` etc., matched by attribute name on anything imported
#: from the ``datetime`` module (the chains ``datetime.datetime.now`` and
#: ``from datetime import datetime; datetime.now`` both resolve here).
_DATETIME_ATTRS = {"now", "utcnow", "today"}


@register
class EnvironmentLeakRule(FileRule):
    """R4: wall-clock, entropy and environment reads in the library."""

    rule_id = "R4"
    name = "environment-leak"
    description = (
        "time.time/datetime.now/os.urandom/uuid4 and os.environ reads make "
        "simulation or sweep results depend on when/where they ran; route "
        "everything through config objects and simulated time"
    )
    scope = ("src/repro/*",)
    # Rule-scoped sanction: repro.obs owns the monotonic telemetry clock
    # (Telemetry's default perf_counter_ns) and the runtime-knob reader
    # (env_knob); R9's observables firewall keeps everything recorded there
    # out of simulation/sweep results, which is the property this rule
    # protects per-site everywhere else.
    exclude = ("src/repro/obs/*",)

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        aliases, names = _module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            # Subscript read: os.environ["X"] (write would be setitem too —
            # mutating the environment is just as banned).
            if isinstance(node, ast.Subscript):
                dotted = _dotted(node.value, aliases)
                if dotted in {"os.environ", "os.environb"}:
                    yield self.finding(
                        ctx.relpath,
                        node,
                        "environment access (os.environ[...]) in library code: results "
                        "must not depend on ambient environment variables; use explicit "
                        "configuration (or pragma a sanctioned knob)",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = _dotted(func, aliases) if isinstance(func, ast.Attribute) else None
            if dotted is None and isinstance(func, ast.Name):
                dotted = names.get(func.id)
            if dotted in _BANNED_CALLS:
                yield self.finding(
                    ctx.relpath,
                    node,
                    f"{_BANNED_CALLS[dotted]} ({dotted}) in library code: simulation "
                    f"and sweep results must be pure functions of spec + config "
                    f"(simulated time only)",
                )
                continue
            # datetime.now() and friends, however the class was imported.
            if isinstance(func, ast.Attribute) and func.attr in _DATETIME_ATTRS:
                base = func.value
                base_dotted = _dotted(base, aliases)
                from_datetime = base_dotted is not None and (
                    base_dotted == "datetime" or base_dotted.startswith("datetime.")
                )
                if not from_datetime and isinstance(base, ast.Name):
                    origin = names.get(base.id, "")
                    from_datetime = origin.startswith("datetime.")
                if from_datetime:
                    yield self.finding(
                        ctx.relpath,
                        node,
                        f"wall-clock read (datetime …{func.attr}()) in library code: "
                        f"results must be functions of simulated time, not the host clock",
                    )
