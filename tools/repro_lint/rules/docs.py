"""R8: config-knob documentation coverage.

``SimulationConfig`` is the engine's entire user-facing parameter surface;
an undocumented field is a knob users cannot discover and a reviewer cannot
check against the paper's values.  Every dataclass field must appear —
inside an inline code span or a fenced code block — in the README's
engine-knob table or in ``docs/fast_path.md``.  (Prose mentions do not
count: ``trace`` the English word is not ``trace`` the knob.)
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..framework import FileContext, FileRule, Finding, Project, register

_CONFIG = "src/repro/simulator/config.py"
_DOCS = ("README.md", "docs/fast_path.md")

_FENCE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`([^`]+)`")


def _config_fields(tree: ast.Module) -> dict[str, int]:
    """``SimulationConfig`` dataclass fields -> line numbers."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "SimulationConfig":
            return {
                stmt.target.id: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            }
    return {}


def _code_span_corpus(text: str) -> str:
    """Concatenated contents of fenced blocks and inline code spans."""
    fenced = _FENCE.findall(text)
    remainder = _FENCE.sub("", text)
    inline = _INLINE_CODE.findall(remainder)
    return "\n".join(fenced + inline)


@register
class ConfigKnobDocsRule(FileRule):
    """R8: every ``SimulationConfig`` field documented in README/fast_path."""

    rule_id = "R8"
    name = "config-knob-docs"
    description = (
        "every SimulationConfig field must appear (as code) in the README "
        "engine-knob table or docs/fast_path.md — an undocumented knob is "
        "invisible to users and unreviewable against the paper"
    )
    scope = (_CONFIG,)

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        fields = _config_fields(ctx.tree)
        if not fields:
            yield self.finding(
                ctx.relpath, 1, "SimulationConfig dataclass not found (scan broken?)"
            )
            return
        corpora: list[str] = []
        missing_docs: list[str] = []
        for relpath in _DOCS:
            text = project.read_text(relpath)
            if text is None:
                missing_docs.append(relpath)
            else:
                corpora.append(_code_span_corpus(text))
        if missing_docs:
            yield self.finding(
                ctx.relpath,
                1,
                f"knob documentation file(s) missing: {', '.join(missing_docs)}",
            )
        corpus = "\n".join(corpora)
        for name in sorted(fields):
            pattern = re.compile(rf"(?<![\w]){re.escape(name)}(?![\w])")
            if not pattern.search(corpus):
                yield self.finding(
                    ctx.relpath,
                    fields[name],
                    f"config knob '{name}' is not documented: add it to the "
                    f"README engine-knob table or docs/fast_path.md (inline "
                    f"code or a fenced block)",
                )
