"""R1 (set-iteration order) and R5 (float accumulation order).

Python sets iterate in hash order, and string/object hashes are salted per
process (``PYTHONHASHSEED``): any trace-, stat- or export-affecting code
that iterates a ``set`` can produce different output on the next run or on
another host.  The engine's own state (``WormholeSimulator._segments``) is
a set precisely because membership is the hot operation — every *ordered*
consumer must go through ``sorted(...)`` (the sanctioned fix; a bare
``sorted`` call is deterministic because equal elements are
indistinguishable, while ``sorted(key=...)`` breaks ties by encounter
order and therefore does NOT count as safe).

R5 is the floating-point sibling: ``sum()`` over an unordered iterable of
floats is nondeterministic even when the *multiset* of values is fixed,
because float addition is not associative.  It is scoped to the statistics
paths (``analysis/``, ``simulator/stats.py``) where a silently reordered
sum would corrupt exported figures.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator

from ..framework import FileContext, FileRule, Finding, Project, register
from ._shared import (
    SetBindings,
    collect_class_set_attrs,
    is_set_expr,
    iter_scopes,
    scope_set_bindings,
)

#: Builtins whose result depends on the argument's iteration order (or, for
#: ``min``/``max``, on tie-breaking by encounter order).
_ORDER_SENSITIVE_CALLS = {"sum", "min", "max", "list", "tuple", "enumerate", "iter"}
#: Calls where the iterable sits past a leading callable argument.
_HIGHER_ORDER_CALLS = {"map": 1, "filter": 1}
#: Contexts that neutralise iteration order (results are order-independent).
_SAFE_CALLS = {"set", "frozenset", "len", "any", "all"}

#: Files whose ``sum()`` hazards belong to R5 (so R1 does not double-report).
_R5_SCOPE = ("src/repro/analysis/*", "src/repro/simulator/stats.py")

#: Accumulators with float-order sensitivity (R5).
_FLOAT_ACCUMULATORS = {"sum", "fsum", "mean", "stdev", "pstdev", "variance", "pvariance"}


def _sorted_without_key(node: ast.Call) -> bool:
    func = node.func
    is_sorted = isinstance(func, ast.Name) and func.id == "sorted"
    if not is_sorted:
        return False
    return not any(kw.arg == "key" for kw in node.keywords)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _safe_wrappers(scope_walk: list[ast.AST]) -> set[int]:
    """ids of comprehension/name nodes neutralised by a safe enclosing call
    (``sorted(gen)``, ``set(gen)``, ``any(gen)`` ...)."""
    safe: set[int] = set()
    for node in scope_walk:
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if (name in _SAFE_CALLS) or _sorted_without_key(node):
            for arg in node.args:
                safe.add(id(arg))
    return safe


def _scope_nodes(scope: ast.AST) -> list[ast.AST]:
    """Nodes of one scope, excluding nested function/class scopes."""
    collected: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        collected.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return collected


def _iter_hazards(
    scope: ast.AST, bindings: SetBindings
) -> Iterator[tuple[ast.expr, str]]:
    """(offending set expression, description of the iteration context)."""
    nodes = _scope_nodes(scope)
    safe = _safe_wrappers(nodes)
    for node in nodes:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if is_set_expr(node.iter, bindings):
                yield node.iter, "a for-loop"
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            if id(node) in safe:
                continue  # e.g. sorted(f(x) for x in s) — output is ordered
            for comp in node.generators:
                if is_set_expr(comp.iter, bindings):
                    yield comp.iter, "a comprehension"
        elif isinstance(node, ast.Call):
            # Findings anchor at the *call* node so an inline pragma on the
            # line of the call works even when the set argument wraps onto
            # a following line.
            name = _call_name(node)
            if name == "sorted" and not _sorted_without_key(node):
                if node.args and is_set_expr(node.args[0], bindings):
                    yield node, "sorted(key=...) (ties break by encounter order)"
            elif name in _ORDER_SENSITIVE_CALLS and isinstance(node.func, ast.Name):
                if node.args and is_set_expr(node.args[0], bindings):
                    yield node, f"{name}()"
            elif name in _HIGHER_ORDER_CALLS and isinstance(node.func, ast.Name):
                start = _HIGHER_ORDER_CALLS[name]
                for arg in node.args[start:]:
                    if is_set_expr(arg, bindings):
                        yield node, f"{name}()"
            elif name == "join" and isinstance(node.func, ast.Attribute):
                if node.args and is_set_expr(node.args[0], bindings):
                    yield node, "str.join()"


def _file_bindings(ctx: FileContext) -> Iterator[tuple[ast.AST, SetBindings]]:
    class_attrs: dict[ast.ClassDef, set[str]] = {}
    for scope, enclosing_class in iter_scopes(ctx.tree):
        bindings = scope_set_bindings(scope)
        if enclosing_class is not None:
            if enclosing_class not in class_attrs:
                class_attrs[enclosing_class] = collect_class_set_attrs(enclosing_class)
            bindings.self_attrs = class_attrs[enclosing_class]
        yield scope, bindings


@register
class SetIterationRule(FileRule):
    """R1: iteration over a ``set``/``frozenset`` in result-affecting code."""

    rule_id = "R1"
    name = "set-iteration"
    description = (
        "for-loops, comprehensions, sum/min/max/list/tuple/map/filter/join and "
        "sorted(key=...) over set values iterate in salted-hash order; wrap the "
        "set in sorted(...) or justify the site with a pragma"
    )
    scope = ("src/repro/*", "tools/*", "benchmarks/*")

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        in_r5_scope = any(
            fnmatch.fnmatch(ctx.relpath, pattern) for pattern in _R5_SCOPE
        )
        for scope, bindings in _file_bindings(ctx):
            for expr, context in _iter_hazards(scope, bindings):
                if in_r5_scope and context == "sum()":
                    continue  # R5 owns float sums in the statistics paths
                yield self.finding(
                    ctx.relpath,
                    expr,
                    f"iteration over a set in {context} follows salted-hash order "
                    f"(nondeterministic across processes); wrap it in sorted(...)",
                )


def _float_sum_hazards(
    scope: ast.AST, bindings: SetBindings
) -> Iterator[ast.expr]:
    for node in _scope_nodes(scope):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _FLOAT_ACCUMULATORS or not node.args:
            continue
        arg = node.args[0]
        if is_set_expr(arg, bindings):
            yield arg
        elif isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            if any(is_set_expr(comp.iter, bindings) for comp in arg.generators):
                yield arg


@register
class FloatOrderRule(FileRule):
    """R5: float accumulation over an unordered iterable in statistics code."""

    rule_id = "R5"
    name = "float-order"
    description = (
        "sum()/fsum()/mean() over a set (or a generator driven by one) adds "
        "floats in salted-hash order; float addition is not associative, so "
        "exported statistics would differ across hosts — sort first"
    )
    scope = _R5_SCOPE

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        for scope, bindings in _file_bindings(ctx):
            for expr in _float_sum_hazards(scope, bindings):
                yield self.finding(
                    ctx.relpath,
                    expr,
                    "float accumulation over an unordered iterable: addition order "
                    "follows the salted hash, and float addition is not associative; "
                    "accumulate over sorted(...) values instead",
                )
