"""Rule registry assembly: importing this package registers every rule.

Rule map (normative rationale in ``docs/determinism.md``):

========  ==================  ====================================================
Rule id   Name                Guards against
========  ==================  ====================================================
R0        pragma-discipline   suppression pragmas without a justification
R1        set-iteration       salted-hash iteration order reaching traces/stats
R2        salted-hash         builtin ``hash()``/``id()`` in keys and orderings
R3        rng-discipline      global or unseeded RNG state
R4        environment-leak    wall-clock / entropy / environment dependence
R5        float-order         non-associative float sums over unordered iterables
R6        counter-discipline  uninitialized counters; undocumented ``coalesce*``
R7        pool-purity         module-state mutation in process-pool workers
R8        config-knob-docs    undocumented ``SimulationConfig`` fields
R9        observables-firewall telemetry (``repro.obs``) leaking into observables
========  ==================  ====================================================

(E0 — unparseable file — and R0 are emitted by the framework itself.)
Adding a rule: subclass :class:`~tools.repro_lint.framework.FileRule` in a
new module here, decorate it with ``@register``, and import the module
below; ``docs/determinism.md`` documents the policy a new rule must follow.
"""

from . import counters, docs, environment, hashing, iteration, obs, purity, rng  # noqa: F401
