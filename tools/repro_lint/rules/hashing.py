"""R2: salted-hash hazards — builtin ``hash()`` / ``id()`` in keyed contexts.

The content-addressed store, the shard partitioner and every export key
results by **stable digests** (``hashlib.sha256`` over canonical JSON —
see ``docs/sweeps.md``).  Builtin ``hash()`` is salted per process for
``str``/``bytes`` (``PYTHONHASHSEED``) and ``id()`` is an address: using
either in an ordering key, a spec key, a shard assignment or any persisted
value silently breaks reproducibility across processes and hosts.  The
rule flags *every* call of the two builtins inside the library — a
legitimate use (none exist today) must carry a justified pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, FileRule, Finding, Project, register

_BANNED = {
    "hash": (
        "builtin hash() is salted per process (PYTHONHASHSEED) for str/bytes; "
        "spec keys, shard assignments and orderings must use a stable digest "
        "(hashlib.sha256 over canonical JSON, see repro.sweeps.store.spec_key)"
    ),
    "id": (
        "id() is a memory address — different on every run; never use it for "
        "ordering, keys or persisted values (use a stable identifier such as "
        "message.mid or a spec key)"
    ),
}


@register
class SaltedHashRule(FileRule):
    """R2: builtin ``hash()``/``id()`` anywhere in the library."""

    rule_id = "R2"
    name = "salted-hash"
    description = (
        "builtin hash() and id() are process-local (hash salting, addresses); "
        "keys, orderings and shard assignments must use stable digests"
    )
    scope = ("src/repro/*",)

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _BANNED:
                yield self.finding(ctx.relpath, node, _BANNED[func.id])
