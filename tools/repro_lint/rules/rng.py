"""R3: RNG discipline — all randomness flows from spec/config seeds.

The sweep architecture's core guarantee (``docs/sweeps.md``) is that a
point's result is a pure function of its :class:`SweepPointSpec` — seeds
included.  That dies the moment any library code touches *global* RNG
state (``random.random()``, ``numpy.random.seed()``, the legacy
``np.random.*`` functions) or builds an **unseeded** generator
(``random.Random()`` / ``np.random.default_rng()`` with no argument, which
seed from OS entropy).  Every generator must be constructed from an
explicit seed that arrived via a spec, a config field or a function
parameter.

Detection is alias-aware for the common import shapes (``import numpy as
np``, ``from numpy import random``, ``from numpy.random import
default_rng``, ``import random``); annotations such as
``np.random.Generator`` are types, not calls, and are ignored.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, FileRule, Finding, Project, register

#: Constructors that are fine *when given an explicit seed argument*.
_SEEDABLE = {"Random", "default_rng", "RandomState", "SeedSequence"}
#: numpy.random attributes that are legitimate without calling (classes /
#: seeded constructors); anything else called on the module is global state.
_NUMPY_ALLOWED = _SEEDABLE | {"Generator", "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64"}


def _module_aliases(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """(module aliases, imported-name origins).

    ``import numpy as np``            -> aliases["np"] = "numpy"
    ``from numpy import random``      -> aliases["random"] = "numpy.random"
    ``import random``                 -> aliases["random"] = "random"
    ``from random import shuffle``    -> names["shuffle"] = "random.shuffle"
    ``from numpy.random import default_rng`` -> names["default_rng"] = "numpy.random.default_rng"
    """
    aliases: dict[str, str] = {}
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
                if item.asname is None and "." in item.name:
                    # ``import numpy.random`` binds "numpy".
                    aliases[item.name.split(".")[0]] = item.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                full = f"{node.module}.{item.name}"
                bound = item.asname or item.name
                # Submodule import (from numpy import random) vs name import
                # (from random import shuffle) cannot be told apart
                # statically; record both views and let the caller match.
                aliases[bound] = full
                names[bound] = full
    return aliases, names


def _dotted(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to a dotted module path, alias-expanded."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


@register
class RngDisciplineRule(FileRule):
    """R3: global-state or unseeded RNG construction in the library."""

    rule_id = "R3"
    name = "rng-discipline"
    description = (
        "module-level random.*/numpy.random.* calls and unseeded "
        "Random()/default_rng() construction draw from process-global or OS "
        "entropy; all randomness must flow from spec/config seeds"
    )
    scope = ("src/repro/*",)

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        aliases, names = _module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._classify(node, aliases, names)
            if target is not None:
                yield self.finding(ctx.relpath, node, target)

    def _classify(
        self, node: ast.Call, aliases: dict[str, str], names: dict[str, str]
    ) -> str | None:
        has_args = bool(node.args or node.keywords)
        func = node.func
        dotted = _dotted(func, aliases) if isinstance(func, ast.Attribute) else None
        if dotted is None and isinstance(func, ast.Name):
            dotted = names.get(func.id)
        if dotted is None:
            return None

        if dotted.startswith("numpy.random."):
            leaf = dotted.rsplit(".", 1)[1]
            if leaf in _SEEDABLE and not has_args:
                return (
                    f"{leaf}() without a seed draws from OS entropy; construct "
                    f"generators from an explicit spec/config seed"
                )
            if leaf not in _NUMPY_ALLOWED:
                return (
                    f"numpy.random.{leaf}() uses numpy's process-global RNG state; "
                    f"thread an explicit numpy.random.Generator through instead"
                )
            return None
        if dotted == "random" or dotted.startswith("random."):
            leaf = dotted.rsplit(".", 1)[1] if "." in dotted else dotted
            if leaf in _SEEDABLE:
                if not has_args:
                    return (
                        f"{leaf}() without a seed draws from OS entropy; pass an "
                        f"explicit seed from the spec/config"
                    )
                return None
            if leaf == "SystemRandom":
                return "SystemRandom draws from OS entropy and can never be reproducible"
            return (
                f"random.{leaf}() mutates/reads the process-global RNG; construct "
                f"a seeded random.Random(seed) (or numpy Generator) instead"
            )
        return None
