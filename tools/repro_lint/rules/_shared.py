"""Shared AST helpers for the iteration-order rules (R1, R5).

The core problem both rules share: decide, without type inference, whether
an expression *provably* evaluates to a ``set``/``frozenset``.  The helpers
here track set-typed bindings per scope — constructor calls, set literals
and comprehensions, annotations (``x: set[int]``, parameters included),
``self`` attributes annotated or assigned set-valued anywhere in the class,
set-algebra operators and the set methods that return sets.  The analysis
is deliberately *under*-approximate: only expressions that are certainly
sets are reported, so every finding is actionable (no speculative noise).
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "SetBindings",
    "collect_class_set_attrs",
    "is_set_expr",
    "iter_scopes",
    "scope_set_bindings",
]

#: Constructor names producing sets.
_SET_CONSTRUCTORS = {"set", "frozenset"}
#: ``set`` methods returning a new set.
_SET_RETURNING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
#: Operators closed over sets (``a | b``, ``a - b``, ...).
_SET_OPERATORS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    """``set``/``frozenset`` (bare or subscripted), possibly in a union."""
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in _SET_CONSTRUCTORS
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_CONSTRUCTORS
    return False


class SetBindings:
    """Names (and ``self`` attributes) known to be set-typed in one scope."""

    def __init__(self, names: set[str], self_attrs: set[str]):
        self.names = names
        self.self_attrs = self_attrs


def collect_class_set_attrs(cls: ast.ClassDef) -> set[str]:
    """Attribute names a class binds to sets (``self.x = set()``,
    ``self.x: set[...]`` in any method, or a set-annotated class field)."""
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
            target = node.target
            if isinstance(target, ast.Name):
                attrs.add(target.id)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _value_is_set_literalish(node.value)
                ):
                    attrs.add(target.attr)
    return attrs


def _value_is_set_literalish(value: ast.expr) -> bool:
    """Set-producing expressions recognisable without name context."""
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
            return True
    return False


def scope_set_bindings(scope: ast.AST) -> SetBindings:
    """Set-typed names bound anywhere in ``scope`` (no flow sensitivity —
    a name is "a set" if any binding in the scope makes it one)."""
    names: set[str] = set()
    self_attrs: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_set(arg.annotation):
                names.add(arg.arg)
    for node in _walk_scope(scope):
        if isinstance(node, ast.AnnAssign):
            if _annotation_is_set(node.annotation) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Assign):
            if _value_is_set_literalish(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return SetBindings(names=names, self_attrs=set())


def is_set_expr(node: ast.expr, bindings: SetBindings) -> bool:
    """``True`` when ``node`` provably evaluates to a set/frozenset."""
    if _value_is_set_literalish(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in bindings.names
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return node.attr in bindings.self_attrs
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPERATORS):
        return is_set_expr(node.left, bindings) or is_set_expr(node.right, bindings)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _SET_RETURNING_METHODS:
            return is_set_expr(node.func.value, bindings)
    return False


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class scopes
    (comprehensions are walked: they share the bindings we track)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, ast.ClassDef | None]]:
    """Yield ``(scope, enclosing_class)`` for the module and every function,
    at any nesting depth."""
    yield tree, None

    def _recurse(node: ast.AST, enclosing: ast.ClassDef | None) -> Iterator[tuple[ast.AST, ast.ClassDef | None]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from _recurse(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, enclosing
                yield from _recurse(child, enclosing)
            else:
                yield from _recurse(child, enclosing)

    yield from _recurse(tree, None)
