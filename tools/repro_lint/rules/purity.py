"""R7: process-pool purity — submitted functions must be self-contained.

The sweep scheduler ships work to ``ProcessPoolExecutor`` workers.  Under
the default ``fork`` start method a submitted function can *appear* to work
while closing over or mutating module-level state — state that silently
diverges between parent and children, differs under ``spawn`` (macOS,
Windows), and breaks the parallel-vs-sequential bit-identity guarantee the
scheduler tests enforce.  The rule checks every ``….submit(f, …)`` and
``….map(f, …)`` call site (the sweep scheduler and the region-parallel
executor both ship workers through ``submit``; ``Executor.map`` is the
other way a callable crosses the process boundary):

* ``f`` must be a plain module-level function (or an import) — lambdas and
  locally-defined closures are flagged outright;
* a same-module ``f`` must not rebind globals (``global x``; ``x = …`` at
  module scope via ``global``), mutate module-level containers
  (``STATE.append(…)``, ``CACHE[k] = v``) or set attributes on
  module-level objects.

The analysis is one level deep by design (it does not chase the cross-
module call graph): the scheduler's worker entry points are small by
contract, and anything deeper should be restructured rather than argued.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, FileRule, Finding, Project, register

_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
    "appendleft",
    "extendleft",
}


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _module_level_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _local_names(func: ast.FunctionDef) -> set[str]:
    """Parameters plus names assigned (and not declared global) in ``func``."""
    args = func.args
    local = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
    if args.vararg:
        local.add(args.vararg.arg)
    if args.kwarg:
        local.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and isinstance(
            node.target, ast.Name
        ):
            local.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
            node.target, ast.Name
        ):
            local.add(node.target.id)
        elif isinstance(node, ast.comprehension) and isinstance(node.target, ast.Name):
            local.add(node.target.id)
    return local - declared_global


def _mutations_of_module_state(
    func: ast.FunctionDef, module_names: set[str]
) -> Iterator[tuple[ast.AST, str]]:
    local = _local_names(func)
    shadowed = local  # a module name rebound locally is local
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            for name in node.names:
                yield node, f"declares 'global {name}' (rebinding module state)"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                base = node.func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in module_names
                    and base.id not in shadowed
                ):
                    yield node, (
                        f"mutates module-level '{base.id}' via .{node.func.attr}()"
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                base: ast.expr | None = None
                how = ""
                if isinstance(target, ast.Subscript):
                    base, how = target.value, "item assignment"
                elif isinstance(target, ast.Attribute):
                    base, how = target.value, "attribute assignment"
                if (
                    base is not None
                    and isinstance(base, ast.Name)
                    and base.id in module_names
                    and base.id not in shadowed
                ):
                    yield node, f"mutates module-level '{base.id}' via {how}"


@register
class ProcessPoolPurityRule(FileRule):
    """R7: callables given to ``.submit`` stay pure of module state."""

    rule_id = "R7"
    name = "pool-purity"
    description = (
        "functions handed to the process pool (.submit/.map) must be "
        "module-level and must not close over or mutate module-level mutable "
        "state (fork/spawn divergence breaks the parallel-vs-sequential "
        "bit-identity guarantee)"
    )
    scope = ("src/repro/*", "tools/*", "benchmarks/*")

    #: Executor methods whose first argument crosses the process boundary.
    _POOL_CALLS = frozenset({"submit", "map"})

    def check_file(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        module_functions = _module_level_functions(ctx.tree)
        module_names = _module_level_names(ctx.tree)
        checked: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._POOL_CALLS
                and node.args
            ):
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                yield self.finding(
                    ctx.relpath,
                    target,
                    "a lambda submitted to the process pool closes over its "
                    "defining frame; submit a module-level function taking "
                    "explicit arguments",
                )
                continue
            if not isinstance(target, ast.Name):
                # e.g. a bound method — carries its instance through pickle.
                yield self.finding(
                    ctx.relpath,
                    target,
                    "submit a plain module-level function to the process pool; "
                    "bound methods / attribute lookups carry hidden instance "
                    "state into the workers",
                )
                continue
            name = target.id
            function = module_functions.get(name)
            if function is None:
                # Imported callables are fine (one-level analysis by design);
                # a *local* def or assignment of this name is a closure risk.
                if self._is_local_callable(node, name, ctx):
                    yield self.finding(
                        ctx.relpath,
                        target,
                        f"'{name}' is defined inside a function; submitted "
                        f"callables must be module-level so workers rebuild "
                        f"state from arguments, not from a closure",
                    )
                continue
            if name in checked:
                continue
            checked.add(name)
            for offender, what in _mutations_of_module_state(function, module_names):
                yield self.finding(
                    ctx.relpath,
                    offender,
                    f"pool-submitted function '{name}' {what}; worker-side "
                    f"module state diverges from the parent and across start "
                    f"methods — pass state in, return results out",
                )

    @staticmethod
    def _is_local_callable(call: ast.Call, name: str, ctx: FileContext) -> bool:
        """Does a function enclosing ``call`` define ``name`` locally?"""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            span_end = getattr(node, "end_lineno", node.lineno)
            if not (node.lineno <= call.lineno <= span_end):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inner is not node and inner.name == name:
                        return True
                if isinstance(inner, ast.Assign):
                    for assign_target in inner.targets:
                        if isinstance(assign_target, ast.Name) and assign_target.id == name:
                            return True
        return False
