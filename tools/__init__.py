"""Repository tooling (CI checks and the ``repro-lint`` static analyzer).

Making ``tools`` a package lets the analyzer run as a module from a
checkout without any install step::

    python -m tools.repro_lint src/ tools/ benchmarks/
"""
