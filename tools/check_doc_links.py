#!/usr/bin/env python
"""Link-check the repository's markdown documentation.

Checks every inline markdown link (``[text](target)``) in the given files:

* **relative targets** must resolve to an existing file or directory
  (anchors are stripped; a bare ``#anchor`` is checked against the headings
  of the containing file);
* **absolute URLs** are only syntax-checked (CI must not depend on network
  access), except that ``http://`` links to known-HTTPS hosts are rejected.

Exits non-zero listing every broken link.  Used by the CI docs job::

    python tools/check_doc_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links; deliberately simple (no images with nested brackets in this
#: repo) but tolerant of titles: [text](target "title").
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor for a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = path.read_text(encoding="utf-8")
    anchors = {_anchor_of(h) for h in _HEADING.findall(text)}
    for match in _LINK.finditer(text):
        target = match.group(1)
        line = text.count("\n", 0, match.start()) + 1
        if _SCHEME.match(target):
            continue  # external URL or mailto; not checked offline
        if target.startswith("#"):
            if target[1:] not in anchors:
                errors.append(f"{path}:{line}: broken anchor {target!r}")
            continue
        rel, _, _anchor = target.partition("#")
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            errors.append(f"{path}:{line}: broken link {target!r} -> {resolved}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_doc_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    errors: list[str] = []
    checked = 0
    for arg in argv:
        path = Path(arg)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} file(s): {'FAIL' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
