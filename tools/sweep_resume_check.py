#!/usr/bin/env python
"""End-to-end check of the sweep cache + resume semantics (CI smoke job).

Runs a smoke-scale Figure-3 sweep through :mod:`repro.sweeps` and asserts
the subsystem's acceptance guarantees:

1. a warm-cache re-run computes nothing, reads everything from the store,
   produces a byte-identical figure export, and is at least 10x faster
   than the cold run;
2. after deleting half the store (simulating an interrupted sweep), a
   ``--resume`` re-run completes exactly the missing points with a nonzero
   cache-hit count and still reproduces the identical figure;
3. a batched-replication run (``batch_replications`` > 0, fresh store)
   computes every point through the batched Monte-Carlo backend and its
   figure export is byte-identical to the unbatched cold run's.

With ``--shard I/N`` the same guarantees are asserted for one deterministic
shard of the sweep (the CI sweep-smoke job runs a 2-shard matrix this way;
an assembly step then merges the shard stores and compares the warm-cache
export against the unsharded golden).  ``--golden PATH`` additionally runs
the *full, unsharded* sweep into a throwaway store and writes its figure
export to PATH, byte-compatible with ``repro-spam sweep ... --export``.

Usage::

    PYTHONPATH=src python tools/sweep_resume_check.py \
        [--cache-dir DIR] [--shard I/N] [--golden PATH]

Exits nonzero (AssertionError) on any violated guarantee.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.common import SCALES  # noqa: E402
from repro.experiments.figure3 import (  # noqa: E402
    Figure3Config,
    figure3_result_from_points,
    figure3_specs,
)
from repro.sweeps import ResultStore, parse_shard, run_sweep, shard_specs  # noqa: E402


def export(config, outcome) -> bytes:
    figure = figure3_result_from_points(config, outcome.results)
    # Matches the bytes `repro-spam sweep ... --export` writes.
    return (json.dumps(figure.as_dict(), indent=2, sort_keys=True) + "\n").encode()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=None,
                        help="store directory (default: a fresh temp dir)")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="check only shard I of N (1-based) of the sweep")
    parser.add_argument("--golden", default=None, metavar="PATH",
                        help="also run the full unsharded sweep (fresh temp store) "
                             "and write its figure export to PATH")
    args = parser.parse_args()
    shard = None if args.shard is None else parse_shard(args.shard)

    config = Figure3Config(
        network_size=32,
        multicast_degrees=(4, 8),
        arrival_rates_per_us=(0.005, 0.02),
        scale=SCALES["smoke"],
    )
    specs = figure3_specs(config)
    if shard is not None:
        specs = shard_specs(specs, *shard)
        print(f"shard {shard[0] + 1}/{shard[1]}: {len(specs)} of "
              f"{len(figure3_specs(config))} sweep points")
        assert specs, "shard is empty at this smoke scale; widen the grid"

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(args.cache_dir or (Path(tmp) / "sweep-cache"))

        # Timing comes from the scheduler's own wall-time accounting
        # (SweepOutcome.elapsed_seconds and friends), so what we assert on is
        # exactly what `repro-spam sweep` prints in its summary line.
        cold = run_sweep(specs, store=ResultStore(cache_dir))
        assert cold.computed == len(specs) and cold.cache_hits == 0, cold.summary()
        cold_export = export(config, cold)
        print(f"cold run:   {cold.summary()}")

        warm = run_sweep(specs, store=ResultStore(cache_dir))
        assert warm.computed == 0 and warm.cache_hits == len(specs), warm.summary()
        assert export(config, warm) == cold_export, "warm-cache export differs from cold"
        print(f"warm run:   {warm.summary()}")
        speedup = cold.elapsed_seconds / max(warm.elapsed_seconds, 1e-9)
        assert speedup >= 10.0, (
            f"warm-cache re-run only {speedup:.1f}x faster than cold (need >= 10x)"
        )
        print(f"warm/cold speedup: {speedup:.0f}x")

        # Simulate an interrupted sweep: drop every other stored row and the
        # index (the scheduler checkpoints per point, so a kill leaves
        # exactly such a prefix-of-rows store plus a possibly stale index).
        results_path = cache_dir / "results.jsonl"
        rows = results_path.read_bytes().splitlines(keepends=True)
        kept = rows[::2]
        results_path.write_bytes(b"".join(kept))
        (cache_dir / "index.json").unlink()
        print(f"deleted {len(rows) - len(kept)} of {len(rows)} stored rows")

        resumed = run_sweep(specs, store=ResultStore(cache_dir))
        assert resumed.cache_hits == len(kept), resumed.summary()
        assert resumed.cache_hits > 0, "resume must hit the surviving rows"
        assert resumed.computed == len(rows) - len(kept), resumed.summary()
        assert export(config, resumed) == cold_export, "resumed export differs from cold"
        print(f"resume run: {resumed.summary()}")

        # The store ends complete: its manifest must owe nothing.
        status = ResultStore(cache_dir).manifest_status()
        assert status is not None and status.complete, status
        print(f"manifest:   {status.describe()}")

        # Batched Monte-Carlo backend: a fresh store, every point computed
        # through skeleton-sharing batches, byte-identical figure export.
        batched = run_sweep(
            specs,
            store=ResultStore(Path(tmp) / "batched-cache"),
            batch_replications=8,
        )
        assert batched.computed == len(specs) and batched.cache_hits == 0, (
            batched.summary()
        )
        assert export(config, batched) == cold_export, (
            "batched-replication export differs from the unbatched cold run"
        )
        print(f"batched run: {batched.summary()}  (export byte-identical)")

        if args.golden:
            golden_specs = figure3_specs(config)
            golden = run_sweep(golden_specs, store=ResultStore(Path(tmp) / "golden-cache"))
            assert golden.computed + golden.cache_hits == len(golden_specs)
            golden_path = Path(args.golden)
            golden_path.parent.mkdir(parents=True, exist_ok=True)
            golden_path.write_bytes(export(config, golden))
            print(f"golden unsharded export written to {golden_path}")

    print("sweep resume check PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
