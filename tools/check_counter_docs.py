#!/usr/bin/env python
"""Fail when the engine-counter reference and the engine disagree.

``docs/engine_counters.md`` is the normative reference for the engine's
``coalesce*`` observability counters.  This check keeps it from rotting, in
both directions:

* every public ``coalesce*`` attribute assigned on ``WormholeSimulator``
  in ``src/repro/simulator/engine.py`` must appear in the reference as an
  inline-code heading (``### `name` ``);
* every counter the reference documents with such a heading must still
  exist in the engine.

The attribute scan is textual (``self.coalesce... =`` assignments), so the
check needs no imports and runs in the docs CI job next to
``check_doc_links.py``::

    python tools/check_counter_docs.py

Exits non-zero listing every mismatch.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ENGINE = REPO_ROOT / "src" / "repro" / "simulator" / "engine.py"
REFERENCE = REPO_ROOT / "docs" / "engine_counters.md"

#: Public counter attributes: ``self.coalesce... =`` or an annotated
#: ``self.coalesce...: type =``.  Private helpers (``self._coalesce*``)
#: are deliberately not part of the documented surface.
_ATTRIBUTE = re.compile(r"^\s*self\.(coalesce\w*)\s*(?::[^=]+)?=", re.MULTILINE)
#: Counters the reference documents, one heading each.
_HEADING = re.compile(r"^###\s+`(coalesce\w*)`", re.MULTILINE)


def main() -> int:
    errors: list[str] = []
    engine_text = ENGINE.read_text(encoding="utf-8")
    reference_text = REFERENCE.read_text(encoding="utf-8")

    counters = set(_ATTRIBUTE.findall(engine_text))
    documented = set(_HEADING.findall(reference_text))
    if not counters:
        errors.append(f"{ENGINE}: no coalesce* counter attributes found (scan broken?)")
    if not documented:
        errors.append(f"{REFERENCE}: no counter headings found (scan broken?)")

    for name in sorted(counters - documented):
        errors.append(
            f"{REFERENCE}: engine counter {name!r} is not documented "
            f"(add a '### `{name}`' section)"
        )
    for name in sorted(documented - counters):
        errors.append(
            f"{REFERENCE}: documents {name!r}, which no longer exists in {ENGINE.name}"
        )

    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"checked {len(counters)} engine counter(s) against "
        f"{len(documented)} documented: {'FAIL' if errors else 'ok'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
