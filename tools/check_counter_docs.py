#!/usr/bin/env python
"""Fail when the engine/config documentation and the code disagree.

Historically this was a standalone textual check of the ``coalesce*``
counter reference.  It is now a thin shim over the repository's static
analyzer: rule **R6** (counter discipline — initialization *and*
``docs/engine_counters.md`` coverage, both directions) and rule **R8**
(every ``SimulationConfig`` knob documented in the README /
``docs/fast_path.md``).  CLI and exit codes are unchanged::

    python tools/check_counter_docs.py

Exits non-zero listing every mismatch.  For the full rule set, run
``python -m tools.repro_lint`` instead.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import run_lint  # noqa: E402

#: The files the doc-coverage rules anchor their findings on.
_PATHS = (
    "src/repro/simulator/engine.py",
    "src/repro/simulator/config.py",
)


def main() -> int:
    result = run_lint(root=REPO_ROOT, paths=_PATHS, select=["R6", "R8"])
    for finding in result.findings:
        print(finding.render(), file=sys.stderr)
    status = "FAIL" if result.findings else "ok"
    print(
        f"checked counter & config-knob documentation via repro-lint R6/R8: "
        f"{len(result.findings)} error(s): {status}"
    )
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
