"""Setup shim for environments that install with legacy (non-PEP-517) tooling.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that ``pip install -e .`` and ``python setup.py develop`` work in
offline environments whose setuptools/wheel combination cannot build PEP 660
editable wheels.
"""

from setuptools import setup

setup()
