#!/usr/bin/env python
"""Figure 2 style study: latency versus number of destinations.

Runs single SPAM multicasts with an increasing number of destinations in a
paper-style irregular network and prints the latency curve, demonstrating
the paper's headline result that latency is essentially independent of the
number of destinations (because all destinations are reached by one worm
with a single startup).

The sweep executes through the ``repro.sweeps`` orchestrator against a
temporary content-addressed result store, so the example also demonstrates
the warm-cache path: the second run computes nothing and reassembles the
identical figure from stored rows (see ``docs/sweeps.md``).

The network size and sample counts are reduced relative to the paper so the
example finishes in seconds; use the benchmark harness
(``pytest benchmarks/bench_figure2_latency_vs_destinations.py``) or the
``REPRO_SCALE=paper`` environment variable for the full configuration.

Run with:  python examples/single_multicast_sweep.py [num_switches]
"""

from __future__ import annotations

import sys
import tempfile

from repro.analysis import series_side_by_side, software_multicast_lower_bound_us
from repro.experiments import Figure2Config, default_destination_counts
from repro.experiments.common import SCALES
from repro.experiments.figure2 import figure2_result_from_points, figure2_specs
from repro.sweeps import ResultStore, run_sweep


def main() -> None:
    num_switches = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    config = Figure2Config(
        network_sizes=(num_switches,),
        destination_counts={num_switches: default_destination_counts(num_switches, points=7)},
        scale=SCALES["smoke"],
    )
    specs = figure2_specs(config)

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        cold = run_sweep(specs, store=store)
        result = figure2_result_from_points(config, cold.results)

        print(f"Latency vs number of destinations ({num_switches}-switch irregular network)")
        print(series_side_by_side(result))
        print(f"\nsweep (cold): {cold.summary()}")

        # Re-running the identical spec list touches no simulator: every
        # point is a content-addressed cache hit reassembled from the store.
        warm = run_sweep(specs, store=ResultStore(tmp))
        assert warm.computed == 0, "warm-cache run must not recompute anything"
        assert [r.latencies_us for r in warm.results] == [
            r.latencies_us for r in cold.results
        ], "stored rows must reproduce the figure bit-identically"
        print(f"sweep (warm): {warm.summary()} — bit-identical figure from the store")

    series = result.series[0]
    flat_spread = series.spread()
    print(f"\nspread of the curve (max - min latency): {flat_spread:.2f} us")
    print("paper's observation: the curve is essentially flat — a single worm and a")
    print("single startup reach any number of destinations.")

    broadcast = series.points[-1]
    bound = software_multicast_lower_bound_us(int(broadcast.x))
    print(
        f"\nbroadcast to {int(broadcast.x)} destinations: {broadcast.mean:.2f} us measured vs "
        f"{bound:.1f} us software lower bound ({bound / broadcast.mean:.1f}x)"
    )


if __name__ == "__main__":
    main()
