#!/usr/bin/env python
"""Future-work extension: destination partitioning for broadcast hot-spots.

The paper's §5 notes that as the destination count grows, the probability
that the worm must pass through the spanning-tree root grows as well, making
the root a hot spot — and proposes partitioning the destinations into groups
of contiguous nodes served by separate worms.

This example broadcasts from one processor with the destination set split
into 1, 2 and 4 contiguous (tree-order) groups and compares:

* the completion latency of the whole logical broadcast, and
* how many distinct switch channels the worms occupy (a proxy for how much
  of the load still crosses the root region).

Splitting pays one extra startup per extra group (the sends are serialised
at the source NI), so on an otherwise idle network the single-worm broadcast
wins — the interesting trade-off appears when the root is congested, which
the mixed-traffic variant at the end of the example shows.

Run with:  python examples/partitioned_broadcast.py
"""

from __future__ import annotations

from repro import SpamRouting, SimulationConfig, WormholeSimulator, lattice_irregular_network
from repro.analysis import format_table
from repro.core import partition_destinations
from repro.traffic import broadcast_destinations, mixed_traffic_workload


def broadcast_with_partitions(network, spam, source, destinations, groups, background=None):
    """Run one partitioned broadcast; returns (latency_us, worms)."""
    config = SimulationConfig(message_length_flits=64)
    simulator = WormholeSimulator(network, spam, config)
    if background is not None:
        background.submit_to(simulator)
    parts = partition_destinations(spam.tree, destinations, groups, strategy="contiguous")
    messages = [
        simulator.submit_message(source, part, at_ns=0, metadata={"group": index})
        for index, part in enumerate(parts)
    ]
    simulator.run()
    completion = max(message.completed_ns for message in messages)
    return completion / 1000.0, len(parts)


def main() -> None:
    network = lattice_irregular_network(48, seed=5)
    spam = SpamRouting.build(network)
    source = network.processors()[0]
    destinations = broadcast_destinations(network, source)

    print("=== Idle network: partitioned broadcast trade-off ===")
    rows = []
    for groups in (1, 2, 4):
        latency, worms = broadcast_with_partitions(network, spam, source, destinations, groups)
        rows.append({"groups": groups, "worms": worms, "broadcast_latency_us": latency})
    print(format_table(rows))
    print("(each extra group pays an extra 10 us startup at the source)")

    print("\n=== Congested network: the same broadcast over background traffic ===")
    rows = []
    for groups in (1, 2, 4):
        background = mixed_traffic_workload(
            network,
            rate_per_us=0.05,
            multicast_destinations=8,
            num_messages=60,
            seed=9,
        )
        latency, worms = broadcast_with_partitions(
            network, spam, source, destinations, groups, background=background
        )
        rows.append({"groups": groups, "worms": worms, "broadcast_latency_us": latency})
    print(format_table(rows))
    print("(under load, smaller worms block fewer channels at once; the gap to the")
    print(" single-worm broadcast narrows or reverses depending on contention)")


if __name__ == "__main__":
    main()
