#!/usr/bin/env python
"""Replay the paper's Figure 1 / §3.2 walk-through on the simulator.

The paper illustrates SPAM on an 11-vertex example network: node 5 sends a
multicast to nodes 8, 9, 10 and 11.  The least common ancestor of the
destinations is node 4; one legal unicast prefix is 5 → 2 → 3 → 4 (an up
channel followed by two down cross channels); the worm splits at node 4
towards nodes 6 and 7, and again at node 6 towards 8, 9 and 10.

This example rebuilds that exact network, prints the channel labelling and
the multicast plan, and then runs the multicast on the flit-level simulator
with tracing enabled so the request / acquire / replicate / deliver events of
the multi-head worm can be inspected.

Run with:  python examples/figure1_walkthrough.py
"""

from __future__ import annotations

from repro import SpamRouting, SimulationConfig, WormholeSimulator
from repro.topology import figure1_network


def main() -> None:
    fixture = figure1_network()
    network = fixture.network
    label = network.label

    spam = SpamRouting.build(network, root=fixture.root)

    print("=== Channel labelling (paper §3.1) ===")
    for channel in network.switch_channels():
        tag = spam.labeling.label(channel).short()
        print(f"  {label(channel.src):>2} -> {label(channel.dst):>2} : {tag}")
    print("  (injection channels are up-tree, consumption channels are down-tree)")

    print("\n=== Multicast plan: 5 -> {8, 9, 10, 11} ===")
    plan = spam.multicast_plan(fixture.source, fixture.destinations)
    print(f"  LCA of destinations: node {label(plan.lca)} (paper: node 4)")
    for switch, outputs in plan.branch_outputs.items():
        outs = ", ".join(label(ch.dst) for ch in outputs)
        print(f"  at node {label(switch):>2}: replicate towards {outs}")

    print("\n=== Unicast prefix chosen by the selection function ===")
    head_path = spam.unicast_route(fixture.source, fixture.destinations[0])
    print("  5 -> 8 idle-network route:", " -> ".join(label(ch.src) for ch in head_path)
          + " -> " + label(head_path[-1].dst))

    print("\n=== Flit-level simulation with tracing ===")
    config = SimulationConfig(message_length_flits=8, trace=True)
    simulator = WormholeSimulator(network, spam, config)
    message = simulator.submit_message(fixture.source, fixture.destinations)
    simulator.run()
    print(f"  delivered to all {len(fixture.destinations)} destinations: {message.is_complete}")
    print(f"  latency from startup: {message.latency_from_startup_ns / 1000.0:.2f} us")

    print("\n  key events of the multi-head worm:")
    assert simulator.trace is not None
    for event in simulator.trace.of_kind("request", "acquire", "deliver", "complete"):
        fields = dict(event.fields)
        if "switch" in fields:
            fields["switch"] = label(fields["switch"])
        if "destination" in fields:
            fields["destination"] = label(fields["destination"])
        if "channels" in fields:
            fields["channels"] = [
                f"{label(network.channel(cid).src)}->{label(network.channel(cid).dst)}"
                for cid in fields["channels"]
            ]
        print(f"  [{event.time_ns:>7} ns] {event.kind:<8} {fields}")


if __name__ == "__main__":
    main()
