#!/usr/bin/env python
"""Figure 3 style study: mixed unicast/multicast traffic under load.

Generates 90 % unicast / 10 % multicast traffic with negative-binomial
arrivals in an irregular network, sweeps the average arrival rate, and
prints mean latency per multicast degree — the paper's Figure 3.  The
expected shape: latency grows with the arrival rate (towards saturation) but
is largely independent of the number of destinations per multicast.

Sized to finish in well under a minute; the benchmark harness
(``pytest benchmarks/bench_figure3_mixed_traffic.py``) and the
``REPRO_SCALE`` environment variable control the full-size configuration.

Run with:  python examples/mixed_traffic_study.py
"""

from __future__ import annotations

from repro.analysis import series_side_by_side
from repro.experiments import Figure3Config, run_figure3
from repro.experiments.common import SCALES


def main() -> None:
    config = Figure3Config(
        network_size=32,
        multicast_degrees=(8, 16),
        arrival_rates_per_us=(0.005, 0.02, 0.05),
        scale=SCALES["smoke"],
    )
    result = run_figure3(config)

    print("Mean latency (us) vs per-processor arrival rate (messages/us)")
    print(f"{config.network_size}-switch irregular network, 90% unicast / 10% multicast\n")
    print(series_side_by_side(result))

    lows = [series.points[0].mean for series in result.series]
    highs = [series.points[-1].mean for series in result.series]
    print(f"\nlatency at the lowest rate:  {min(lows):.1f} - {max(lows):.1f} us")
    print(f"latency at the highest rate: {min(highs):.1f} - {max(highs):.1f} us")
    print("paper's observation: the curves rise with load but stay close together —")
    print("latency is largely independent of the multicast degree.")


if __name__ == "__main__":
    main()
