#!/usr/bin/env python
"""Empirically verify the paper's deadlock-freedom claim (Theorem 1).

Three complementary checks are run and printed:

1. **Channel dependency graph** — the dependency relation induced by SPAM's
   routing rules is enumerated on a random irregular topology and checked to
   be acyclic (the Dally/Seitz condition).  The same check is run for the
   classic up*/down* baseline (also acyclic) and for a naive minimal-path
   router (cyclic), to show the check is not vacuous.
2. **Stress simulation** — heavy mixed traffic is run through the flit-level
   simulator with SPAM; every message must be delivered.
3. **Deadlock injection** — the same stress load is run with the naive
   minimal router on a ring network; the simulator's deadlock detector is
   expected to fire and its wait-for-cycle report is printed.

Run with:  python examples/deadlock_verification.py
"""

from __future__ import annotations

from repro import SpamRouting, UpDownRouting
from repro.routing import NaiveMinimalRouting
from repro.topology import lattice_irregular_network, ring_network
from repro.verification import (
    build_naive_cdg,
    build_spam_cdg,
    build_updown_cdg,
    check_unicast_reachability,
    stress_test_deadlock_freedom,
)


def main() -> None:
    network = lattice_irregular_network(32, seed=3)
    spam = SpamRouting.build(network)
    updown = UpDownRouting(network, spam.tree)

    print("=== 1. Channel dependency graphs ===")
    for name, cdg in (
        ("SPAM", build_spam_cdg(spam)),
        ("up*/down*", build_updown_cdg(updown)),
        ("naive minimal (ring)", build_naive_cdg(NaiveMinimalRouting(ring_network(8)))),
    ):
        summary = cdg.summary()
        print(
            f"  {name:<22} channels={summary['channels']:<5} "
            f"dependencies={summary['dependencies']:<7} acyclic={summary['acyclic']}"
        )

    print("\n=== 2. Livelock freedom: exhaustive reachability ===")
    reach = check_unicast_reachability(spam, sample_pairs=200)
    print(
        f"  routed {reach.pairs_checked} source/destination pairs, "
        f"longest route {reach.max_route_length} channels, failures: {len(reach.failures)}"
    )

    print("\n=== 3. Stress simulation with SPAM (must deliver everything) ===")
    for result in stress_test_deadlock_freedom(network, spam, rounds=2, messages_per_round=40):
        print(
            f"  delivered {result.messages_completed}/{result.messages_submitted} messages, "
            f"deadlocked={result.deadlocked}, mean latency {result.mean_latency_us:.1f} us"
        )

    print("\n=== 4. Deadlock injection with naive minimal routing on a ring ===")
    ring = ring_network(8)
    naive = NaiveMinimalRouting(ring)
    results = stress_test_deadlock_freedom(
        ring, naive, rounds=3, messages_per_round=60, rate_per_us=0.2, message_length_flits=32
    )
    deadlocked = [r for r in results if r.deadlocked]
    print(f"  {len(deadlocked)}/{len(results)} stress rounds deadlocked (expected: at least one)")
    if deadlocked:
        first_line = deadlocked[0].deadlock_description.splitlines()[0]
        print(f"  detector report: {first_line}")


if __name__ == "__main__":
    main()
