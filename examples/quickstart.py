#!/usr/bin/env python
"""Quickstart: build an irregular network, run one SPAM multicast, print stats.

This is the smallest end-to-end use of the library's public API:

1. generate a paper-style irregular network (switches on a lattice, one
   processor per switch);
2. build the SPAM routing algorithm on it (BFS spanning tree rooted at the
   graph centre, distance-to-LCA selection function);
3. run one multicast on the flit-level wormhole simulator with the paper's
   latency parameters (10 µs startup, 40 ns router setup, 10 ns per flit per
   channel, 128-flit messages, single-flit buffers);
4. print the measured latency and a few statistics.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SpamRouting, WormholeSimulator, lattice_irregular_network
from repro.analysis import software_multicast_lower_bound_us
from repro.topology import summarize


def main() -> None:
    # 1. A 64-switch irregular network (64 processors, one per switch).
    network = lattice_irregular_network(64, seed=42)
    print("Topology:", summarize(network).as_dict())

    # 2. SPAM routing on a BFS spanning tree rooted at the graph centre.
    spam = SpamRouting.build(network)
    print(f"Spanning tree root: switch {spam.tree.root}, height {spam.tree.height()}")

    # 3. One multicast from the first processor to 32 random destinations.
    simulator = WormholeSimulator(network, spam)
    source = network.processors()[0]
    destinations = network.processors()[1:33]
    message = simulator.submit_message(source, destinations)
    plan = spam.multicast_plan(source, destinations)
    print(
        f"Multicast: {len(destinations)} destinations, LCA switch {plan.lca}, "
        f"worm splits at switches {plan.split_switches}"
    )

    stats = simulator.run()

    # 4. Results.
    latency_us = message.latency_from_startup_ns / 1000.0
    bound_us = software_multicast_lower_bound_us(len(destinations))
    print(f"SPAM multicast latency:            {latency_us:8.2f} us")
    print(f"Software multicast lower bound:    {bound_us:8.2f} us")
    print(f"Hardware-multicast advantage:      {bound_us / latency_us:8.2f} x")
    print(f"Flit-hops simulated: {stats.flit_hops}, bubbles inserted: {stats.bubbles_created}")


if __name__ == "__main__":
    main()
